"""Multicore cycle-level simulation loop.

Two execution engines produce byte-identical results (final memory,
stats counters, retire logs, monitor event streams, timelines --
tests/test_fastpath_equivalence.py is the differential suite):

* **Dense reference loop** (``SimConfig.dense_loop=True``): every core
  is ticked on every cycle, in core-index order.  Trivially correct and
  trivially slow at 300-cycle memory latencies; kept as the escape
  hatch (``--dense-loop`` on every CLI command) and as the baseline the
  perf harness times the fast path against.

* **Event-driven fast path** (the default): each core sleeps between
  ticks on which it can make progress.  After a no-progress tick the
  core reports its exact next wake-up cycle (``Core.next_event_cycle``
  -- completion events, store-buffer drains, branch redirect and drain
  holds; see docs/architecture.md §9) and the scheduler jumps it
  straight there, attributing the skipped span to stall accounting
  (``Core.account_idle``) and to the timeline as an explicit
  skipped-span marker.

Equivalence rests on two invariants, both enforced by tests:

1. *Wake-up soundness*: ticking a stalled core strictly before its
   reported wake-up cycle makes no progress and mutates no observable
   state (tests/test_fastpath_soundness.py).
2. *Idle-delta replay*: a no-progress tick's stall-counter increments
   are a pure function of core state, so replaying the recorded deltas
   once per skipped cycle reproduces the dense loop's counters exactly.

Because skipped ticks are side-effect free, the interleaving of the
ticks that *do* run is the same in both engines (core-index order at
each cycle), which keeps every shared-memory access -- and therefore
every value read, monitor event and chaos RNG draw -- identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from ..cpu.core import Core
from ..isa.program import Program
from ..mem.backend import create_backend
from ..mem.memory import SharedMemory
from .config import SimConfig
from .diagnostics import SimDiagnostic, capture
from .stats import CoreStats, SimStats
from .timeline import core_state
from .tracecomp import compile_program


class SimulationFailure(RuntimeError):
    """A run that ended abnormally; carries a :class:`SimDiagnostic`.

    ``diagnostic`` holds per-core post-mortem state (ROB head,
    store-buffer depth, open scopes, mapping table, last retired ops)
    so failures are debuggable without re-running under a debugger.
    """

    def __init__(self, message: str, diagnostic: SimDiagnostic | None = None) -> None:
        if diagnostic is not None:
            message = f"{message}\n{diagnostic.render()}"
        super().__init__(message)
        self.diagnostic = diagnostic


class DeadlockError(SimulationFailure):
    """No core can ever make progress again."""


class CycleLimitError(SimulationFailure):
    """The run exceeded ``SimConfig.max_cycles``."""


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    stats: SimStats
    memory: SharedMemory
    cycles: int

    @property
    def fence_stall_cycles(self) -> int:
        return self.stats.fence_stall_cycles

    @property
    def fence_stall_fraction(self) -> float:
        return self.stats.fence_stall_fraction


class Simulator:
    """Owns the shared memory, hierarchy and one core per thread."""

    def __init__(
        self,
        config: SimConfig,
        program: Program,
        memory: SharedMemory | None = None,
        tracer=None,
        timeline=None,
    ) -> None:
        if program.n_threads > config.n_cores:
            raise ValueError(
                f"program has {program.n_threads} threads but config has "
                f"{config.n_cores} cores"
            )
        self.config = config
        self.program = program
        self.memory = memory if memory is not None else SharedMemory(
            config.mem_size_words, config.n_cores
        )
        if self.memory.n_cores != config.n_cores:
            raise ValueError("shared memory core count does not match config")
        self.hierarchy = create_backend(config)
        self.core_stats = [CoreStats(core_id=c) for c in range(config.n_cores)]
        self.cores = [
            Core(c, config, self.memory, self.hierarchy, self.core_stats[c])
            for c in range(config.n_cores)
        ]
        if tracer is not None:
            for core in self.cores:
                core.tracer = tracer
        self.timeline = timeline

    def run(self, max_cycles: int | None = None) -> SimResult:
        """Execute the program to completion; returns statistics."""
        limit = max_cycles if max_cycles is not None else self.config.max_cycles
        gens = self.program.spawn()
        for core, gen in zip(self.cores, gens):
            core.bind(gen)
        for core in self.cores[len(gens):]:
            core.bind(None)
        bound = len(gens)

        if self.config.dense_loop:
            self._run_dense(limit)
        else:
            compiled = self.config.trace_compile
            if compiled:
                units = compile_program(self.program)
                if units is not None:
                    for core, thread_units in zip(self.cores, units):
                        core.attach_units(thread_units)
            self._run_event(limit, bound, compiled)

        stats = SimStats(cores=self.core_stats)
        stats.total_cycles = max((c.finish_cycle for c in self.cores), default=0)
        # cores that idled from cycle 0 (no thread) report zero cycles
        return SimResult(stats=stats, memory=self.memory, cycles=stats.total_cycles)

    # ---------------------------------------------------------- dense engine
    def _run_dense(self, limit: int) -> None:
        """Reference loop: tick every core on every cycle."""
        cores = self.cores
        timeline = self.timeline
        cycle = 0
        while cycle < limit:
            progress = False
            running = 0
            for core in cores:
                if core.tick(cycle):
                    progress = True
                if not core.finished:
                    running += 1
            if timeline is not None:
                timeline.sample(cycle, cores)
            if running == 0:
                return
            if not progress and not any(
                core.next_event_cycle(cycle) is not None
                for core in cores
                if not core.finished
            ):
                self._raise_deadlock(cycle)
            cycle += 1
        raise CycleLimitError(
            f"simulation exceeded {limit} cycles "
            f"({sum(1 for c in cores if not c.finished)} cores still running)",
            diagnostic=capture(cores, limit, "cycle-limit"),
        )

    # ---------------------------------------------------------- event engine
    def _run_event(self, limit: int, bound: int, compiled: bool = False) -> None:
        """Event-driven scheduler: sleep each core until its next event.

        A min-heap of ``(wake_cycle, core_index)`` holds every sleeping
        core; each scheduler round pops the cores due at the earliest
        pending cycle and ticks only those, so a sleeping core costs
        nothing per skipped cycle (a linear per-cycle scan would cap the
        speedup at roughly the core count).  Heap ties pop in core-index
        order, matching the dense loop's tick order within a cycle.

        ``wake[i]`` mirrors the heap; ``INF`` marks a stuck core (no
        future event -- it can never progress again, by the wake-up
        soundness contract), which leaves the heap entirely.  Stall
        accounting and timeline skip markers for a sleeping span are
        applied eagerly when the core goes to sleep; stuck cores are
        accounted lazily at deadlock/cycle-limit time, since only then
        is the span known.

        ``compiled`` selects the trace-compiled tick
        (:meth:`~repro.cpu.core.Core.tick_compiled`) and enables
        same-core chaining: when the core just ticked is due again
        strictly before every sleeping core, it keeps running without a
        heap round trip.  Chaining only fires when the next due cycle is
        *strictly* earlier than the heap top, so heap ties still pop in
        core-index order and the global tick interleaving -- and with it
        every observable -- is untouched.
        """
        cores = self.cores
        timeline = self.timeline
        n = len(cores)
        INF = limit + 1
        wake = [0] * n
        last_tick = [0] * n
        # pre-bound tick methods: shaves a lookup per tick
        ticks = [c.tick_compiled if compiled else c.tick for c in cores]
        heap = [(0, i) for i in range(n) if not cores[i].finished]
        unfinished = len(heap)
        while heap and unfinished:
            cycle = heap[0][0]
            if cycle >= limit:
                break
            progress = False
            while heap and heap[0][0] == cycle:
                i = heappop(heap)[1]
                core = cores[i]
                tick = ticks[i]
                while True:
                    if tick(cycle):
                        progress = True
                        if timeline is not None:
                            timeline.sample_core(cycle, core)
                        if core.finished:
                            unfinished -= 1
                            break
                        nxt = cycle + 1
                        if compiled:
                            # probe-skip hint: every tick in
                            # [cycle+1, skip) is a provably zero-delta
                            # blocked probe (see Core.tick_compiled),
                            # so replay it as idle instead of ticking
                            skip = core._skip_until
                            if skip > nxt and skip < limit and timeline is None:
                                core.account_idle(skip - nxt)
                                nxt = skip
                    else:
                        if timeline is not None:
                            timeline.sample_core(cycle, core)
                        last_tick[i] = cycle
                        ev = core.next_event_cycle(cycle)
                        if ev is None:
                            wake[i] = INF  # stuck: no event can ever wake it
                            break
                        # clamp to the limit so INF stays reserved for
                        # stuck cores; a wake at `limit` simply drives
                        # the loop to its cycle-limit exit
                        ev = min(ev, limit)
                        span_end = ev - 1
                        if span_end > cycle:
                            core.account_idle(span_end - cycle)
                            if timeline is not None:
                                timeline.skip(
                                    core.core_id, cycle + 1, span_end,
                                    core_state(core),
                                )
                        nxt = ev
                    if compiled and nxt < limit and (
                        not heap
                        or heap[0][0] > nxt
                        or (heap[0][0] == nxt and heap[0][1] > i)
                    ):
                        # same-core chain: no other core is due before
                        # this one -- either strictly earlier than the
                        # heap top, or tied with it at a lower core
                        # index (dense ticks ties in index order, and
                        # the remaining tied cores pop right after this
                        # chain ends because `cycle` advances with it)
                        cycle = nxt
                        progress = False
                        continue
                    wake[i] = nxt
                    heappush(heap, (nxt, i))
                    break
            if unfinished and not heap:
                # Every unfinished core is stuck.  The dense loop would
                # detect this at its first all-no-progress cycle: this
                # one if nothing progressed, otherwise the next (after
                # one more round of no-progress ticks, which the settle
                # below replays).  Charge stuck cores the cycles dense
                # would have ticked them since they stalled.
                deadlock_at = cycle if not progress else cycle + 1
                if deadlock_at < limit:
                    self._settle_stuck(deadlock_at, wake, last_tick, INF)
                    self._raise_deadlock(deadlock_at)
                break  # proven stuck at the limit boundary: cycle-limit
        if unfinished:
            self._settle_stuck(limit - 1, wake, last_tick, INF)
            raise CycleLimitError(
                f"simulation exceeded {limit} cycles "
                f"({unfinished} cores still running)",
                diagnostic=capture(cores, limit, "cycle-limit"),
            )
        # Close the timeline: the dense loop samples every core as
        # "done" through the cycle the last core finishes.
        if timeline is not None:
            end = max((c.finish_cycle for c in cores), default=0)
            for i, core in enumerate(cores):
                start = core.finish_cycle + 1 if i < bound else 0
                timeline.skip(core.core_id, start, end, "done")

    def _settle_stuck(self, upto: int, wake, last_tick, INF: int) -> None:
        """Account idle cycles for stuck cores through cycle ``upto``."""
        timeline = self.timeline
        for i, core in enumerate(self.cores):
            if core.finished or wake[i] < INF:
                continue
            span = upto - last_tick[i]
            if span > 0:
                core.account_idle(span)
                if timeline is not None:
                    timeline.skip(
                        core.core_id, last_tick[i] + 1, upto, core_state(core)
                    )

    def _raise_deadlock(self, cycle: int) -> None:
        raise DeadlockError(
            f"no progress possible at cycle {cycle}",
            diagnostic=capture(self.cores, cycle, "deadlock"),
        )


def run_program(program: Program, config: SimConfig | None = None, **config_overrides) -> SimResult:
    """Convenience one-shot runner used by examples and tests."""
    cfg = config if config is not None else SimConfig()
    if config_overrides:
        cfg = cfg.with_(**config_overrides)
    return Simulator(cfg, program).run()
