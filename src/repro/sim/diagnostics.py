"""Structured failure diagnostics for simulation runs.

When a run dies -- deadlock, livelock, cycle budget -- a bare message
("no progress possible at cycle N") is useless for debugging a
simulator this stateful.  :func:`capture` snapshots everything a
post-mortem needs from each core: ROB head and depth, store-buffer
occupancy (including fence-held stores), the open scope stacks (FSS and
FSS'), the overflow counter, the cid -> FSB-entry mapping table, and --
when ``SimConfig.retire_log_len`` enables the ring buffer -- the last N
retired ops.  The snapshot rides on :class:`~repro.sim.simulator.DeadlockError`
and :class:`~repro.sim.simulator.CycleLimitError` as ``exc.diagnostic``
and renders to a readable report via :meth:`SimDiagnostic.render`.

This module reads core state but deliberately imports nothing from
``cpu``/``core`` so it can be used from any layer (the chaos supervisor
re-renders the same snapshots) without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CoreSnapshot:
    """Post-mortem state of one core."""

    core_id: int
    finished: bool
    stall_reason: str | None
    instructions: int
    rob_depth: int
    rob_head: str | None            # repr of the ROB head entry, if any
    sb_depth: int
    sb_held: int                    # stores held behind a speculative fence
    sb_inflight: int
    pending_op: str | None
    open_scopes: tuple[int, ...]    # FSS contents, bottom to top
    shadow_scopes: tuple[int, ...]  # FSS' contents
    overflow_count: int
    open_spec_fences: int           # speculatively issued, incomplete fences
    outstanding_misses: int
    blocked_until: int
    mapping: dict[int, int]         # cid -> FSB entry
    last_retired: tuple = ()        # (cycle, kind, addr) ring, oldest first

    def render(self) -> str:
        lines = [
            f"core {self.core_id}: "
            + ("finished" if self.finished else f"stall={self.stall_reason}")
            + f" insns={self.instructions}"
            f" rob={self.rob_depth} sb={self.sb_depth}"
            + (f" (held={self.sb_held} inflight={self.sb_inflight})" if self.sb_depth else "")
        ]
        if self.rob_head is not None:
            lines.append(f"  rob head: {self.rob_head}")
        if self.pending_op is not None:
            lines.append(f"  pending op: {self.pending_op}")
        lines.append(
            f"  scopes: fss={list(self.open_scopes)} fss'={list(self.shadow_scopes)}"
            f" overflow={self.overflow_count} open_spec_fences={self.open_spec_fences}"
        )
        if self.mapping:
            lines.append(f"  mapping table: {self.mapping}")
        if self.outstanding_misses or self.blocked_until:
            lines.append(
                f"  outstanding_misses={self.outstanding_misses}"
                f" blocked_until={self.blocked_until}"
            )
        if self.last_retired:
            ops = ", ".join(f"@{c}:{k}{'' if a in (-1, None) else f'[{a}]'}"
                            for c, k, a in self.last_retired)
            lines.append(f"  last retired: {ops}")
        return "\n".join(lines)


@dataclass
class SimDiagnostic:
    """Whole-simulation post-mortem attached to run failures."""

    reason: str                     # "deadlock" / "cycle-limit"
    cycle: int
    cores: list[CoreSnapshot] = field(default_factory=list)

    @property
    def running_cores(self) -> list[CoreSnapshot]:
        return [c for c in self.cores if not c.finished]

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    def render(self) -> str:
        head = f"[{self.reason} @ cycle {self.cycle}] " \
               f"{len(self.running_cores)}/{len(self.cores)} cores still running"
        body = "\n".join(c.render() for c in self.cores if not c.finished)
        return head + ("\n" + body if body else "")


def snapshot_core(core) -> CoreSnapshot:
    """Capture one core's state (duck-typed against ``cpu.core.Core``)."""
    tracker = core.tracker
    sb_entries = list(core.sb.entries())
    rob_head = None
    if not core.rob.empty:
        rob_head = repr(core.rob.head())
    return CoreSnapshot(
        core_id=core.core_id,
        finished=core.finished,
        stall_reason=core.stall_reason,
        instructions=core.stats.instructions,
        rob_depth=len(core.rob),
        rob_head=rob_head,
        sb_depth=len(sb_entries),
        sb_held=sum(1 for e in sb_entries if e.held),
        sb_inflight=sum(1 for e in sb_entries if e.state != 0),
        pending_op=repr(core._pending_op) if core._pending_op is not None else None,
        open_scopes=tracker.fss.items(),
        shadow_scopes=tracker.shadow_fss.items(),
        overflow_count=tracker.overflow_count,
        open_spec_fences=len(core._spec_fence_groups),
        outstanding_misses=core._outstanding_misses,
        blocked_until=core._blocked_until,
        mapping=tracker.mapping.mappings(),
        last_retired=tuple(core.retire_log) if core.retire_log is not None else (),
    )


def capture(cores, cycle: int, reason: str) -> SimDiagnostic:
    """Snapshot every core of a (possibly wedged) simulation."""
    return SimDiagnostic(
        reason=reason,
        cycle=cycle,
        cores=[snapshot_core(c) for c in cores],
    )
