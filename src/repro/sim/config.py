"""Simulation configuration.

Defaults reproduce Table III of the paper:

=============  =======================================
Processor      8 core CMP, out-of-order
ROB size       128
L1 Cache       private 32 KB, 4 way, 2-cycle latency
L2 Cache       shared 1 MB, 8 way, 10-cycle latency
Memory         300-cycle latency
FSB entries    4
FSS entries    4
=============  =======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


#: coherence backends the simulator can run on (see repro.mem.backend).
#: ``mesi`` is the default invalidation-based hierarchy the paper
#: assumes; ``sisd`` is the self-invalidation/self-downgrade rival
#: design (Abdulla et al., "Mending Fences with Self-Invalidation and
#: Self-Downgrade").
MEM_BACKENDS = ("mesi", "sisd")


class MemoryModel(enum.Enum):
    """Supported relaxed consistency models.

    The paper evaluates under RMO (Section III, "Memory consistency
    models"); the other models exist for litmus tests and the A3
    ablation.  The model controls (a) the store-buffer drain policy and
    (b) implicit ordering at dispatch:

    * ``SC``  -- every memory op waits for all prior memory ops.
    * ``TSO`` -- store buffer drains strictly in FIFO order; loads may
      bypass buffered stores (with forwarding).
    * ``PSO`` -- stores may drain out of order (same-address FIFO).
    * ``RMO`` -- like PSO plus no implicit load ordering in the timing
      model (multiple loads outstanding).
    """

    SC = "sc"
    TSO = "tso"
    PSO = "pso"
    RMO = "rmo"

    @property
    def sb_fifo(self) -> bool:
        """Whether the store buffer must drain in FIFO order."""
        return self in (MemoryModel.SC, MemoryModel.TSO)

    @property
    def sb_at_dispatch(self) -> bool:
        """Whether stores enter the store buffer at dispatch.

        The paper's core retires stores "to the store buffer as soon as
        the value and destination address are available" -- a senior
        store queue.  Draining a younger store before an older load
        completes reorders load->store, which only RMO permits; the
        other models insert at in-order retirement.
        """
        return self is MemoryModel.RMO


@dataclass(frozen=True)
class SimConfig:
    """All architectural and behavioural knobs of the simulator."""

    # --- Table III defaults -------------------------------------------------
    n_cores: int = 8
    rob_size: int = 128
    l1_kb: int = 32
    l1_assoc: int = 4
    l1_latency: int = 2
    l2_kb: int = 1024
    l2_assoc: int = 8
    l2_latency: int = 10
    mem_latency: int = 300
    fsb_entries: int = 4
    fss_entries: int = 4

    # --- Additional microarchitectural parameters ---------------------------
    sb_size: int = 8              # store buffer entries (Section VI-E uses 8)
    dispatch_width: int = 4
    retire_width: int = 4
    # outstanding load misses per core (miss-status holding registers);
    # 0 disables the limit.  Bounds memory-level parallelism.
    mshrs: int = 16
    mapping_entries: int = 4      # cid -> FSB-entry mapping table capacity
    line_bytes: int = 64
    word_bytes: int = 8
    branch_latency: int = 2       # cycles to resolve a branch
    mispredict_penalty: int = 12  # flush/refetch penalty on misprediction
    cache_to_cache_latency: int = 10  # dirty line supplied by a peer L1

    # --- Behavioural switches ------------------------------------------------
    # coherence backend the hierarchy factory instantiates (MEM_BACKENDS):
    # the timing side of every memory access and fence sync point.
    # Functional values always come from SharedMemory + store buffers,
    # so the backend choice changes timing (and therefore which relaxed
    # interleavings a sweep reaches), never what a program may compute.
    mem_backend: str = "mesi"
    memory_model: MemoryModel = MemoryModel.RMO
    scoped_fences: bool = True    # False: every S-Fence degrades to GLOBAL
    in_window_speculation: bool = False  # Gharachorloo-style speculation
    # MIPS-style LL/SC atomics carry no implicit ordering (the paper's
    # SESC/MIPS substrate); set cas_fence=True for x86-style atomics that
    # behave as full fences (ablation A2).
    cas_fence: bool = False
    # predict Branch ops with a per-core two-bit predictor (indexed by
    # Branch.pc) instead of trusting the guest-stamped mispredict flag
    use_branch_predictor: bool = False
    predictor_entries: int = 512
    seed: int = 12345

    # keep the last N retired ops per core in a ring buffer for failure
    # diagnostics (0 disables; the chaos harness enables it)
    retire_log_len: int = 0

    # --- Execution engine ----------------------------------------------------
    # Run the reference per-cycle loop that ticks every core on every
    # cycle instead of the event-driven scheduler.  Both engines produce
    # byte-identical results (cycles, stats, retire logs, monitor event
    # streams -- see tests/test_fastpath_equivalence.py); the dense loop
    # exists as an escape hatch (``--dense-loop`` on every CLI command)
    # and as the baseline the perf harness times the fast path against.
    dense_loop: bool = False

    # Trace-compiled guest execution (the default event-engine mode):
    # straight-line op runs are compiled into CompiledBlocks
    # (repro.sim.tracecomp) the core admits through a fused dispatch
    # path, batching ROB/store-buffer bookkeeping and cache timing
    # queries.  Byte-identical to the interpreter by construction --
    # every cut point (branch, fence, scope delimiter, CAS, flagged op)
    # and every capacity hazard falls back to the per-op path.  Ignored
    # under ``dense_loop`` (the reference loop always interprets);
    # ``--no-trace-compile`` is the CLI escape hatch.
    trace_compile: bool = True

    # --- Limits ---------------------------------------------------------------
    mem_size_words: int = 1 << 22  # functional memory size (32 MB of words)
    max_cycles: int = 50_000_000

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        if self.rob_size < 2:
            raise ValueError("rob_size must be >= 2")
        if self.sb_size < 1:
            raise ValueError("sb_size must be >= 1")
        if self.fsb_entries < 2:
            raise ValueError("fsb_entries must be >= 2 (one is reserved for set scope)")
        if self.line_bytes % self.word_bytes != 0:
            raise ValueError("line_bytes must be a multiple of word_bytes")
        if self.mem_backend not in MEM_BACKENDS:
            raise ValueError(
                f"unknown mem_backend {self.mem_backend!r} (have {MEM_BACKENDS})"
            )
        for name in ("l1_kb", "l1_assoc", "l2_kb", "l2_assoc"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    # Convenience derived values ------------------------------------------------
    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def l1_lines(self) -> int:
        return self.l1_kb * 1024 // self.line_bytes

    @property
    def l2_lines(self) -> int:
        return self.l2_kb * 1024 // self.line_bytes

    def with_(self, **kwargs) -> "SimConfig":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **kwargs)


#: The exact configuration of Table III.
TABLE_III = SimConfig()
