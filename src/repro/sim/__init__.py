"""Simulator: configuration, statistics, multicore cycle loop."""

from .config import MemoryModel, SimConfig, TABLE_III
from .stats import CoreStats, SimStats

__all__ = ["MemoryModel", "SimConfig", "TABLE_III", "CoreStats", "SimStats"]
