"""Per-cycle execution timeline for small runs (debugging/teaching).

Attach a :class:`TimelineRecorder` to a :class:`Simulator` to capture,
for every core and cycle, whether the core dispatched work, stalled at
a fence, waited on a full ROB/store buffer, or idled.  ``render``
compresses the recording into per-core segments -- a poor man's
pipeline viewer that makes fence stalls visible at a glance:

    core 0 | 0-11 run | 12-310 fence | 311-320 run | ...

Under the dense reference loop the simulator samples every core on
every cycle (:meth:`sample`).  Under the event-driven fast path a core
is only ticked at cycles where it can make progress; the scheduler then
records one sample per tick (:meth:`sample_core`) and an explicit
**skipped-span marker** (:meth:`skip`) for every run of cycles it
warped the core over, so no cycle of the timeline is silently lost and
``segments``/``state_cycles`` are identical across execution modes
(tests/test_timeline.py has the cross-mode regression).

The recorder costs a callback per simulated tick; use it on small
programs only (the benchmarks never enable it).
"""

from __future__ import annotations

from dataclasses import dataclass


def core_state(core) -> str:
    """The timeline state label for a core after a tick.

    The same mapping is used for per-cycle samples and skipped-span
    markers, which is what keeps dense and fast-path timelines
    byte-identical: a skipped core's state cannot change while it
    sleeps, so the label from its last no-progress tick holds for the
    whole span.
    """
    if core.finished and not core.stall_reason:
        return "done"
    return core.stall_reason or "run"


@dataclass(frozen=True)
class Segment:
    core: int
    start: int
    end: int      # inclusive
    state: str

    @property
    def length(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class SkippedSpan:
    """A run of cycles the event scheduler warped a core over."""

    core: int
    start: int
    end: int      # inclusive
    state: str

    @property
    def length(self) -> int:
        return self.end - self.start + 1


class TimelineRecorder:
    """Collects one state sample per (cycle, core), plus skip markers."""

    def __init__(self) -> None:
        self._samples: dict[int, list[tuple[int, str]]] = {}
        self._skips: dict[int, list[SkippedSpan]] = {}

    # -- Simulator hooks ---------------------------------------------------------
    def sample(self, cycle: int, cores) -> None:
        """Dense loop: one sample for every core this cycle."""
        for core in cores:
            self._samples.setdefault(core.core_id, []).append(
                (cycle, core_state(core))
            )

    def sample_core(self, cycle: int, core) -> None:
        """Fast path: one sample for a core the scheduler just ticked."""
        self._samples.setdefault(core.core_id, []).append(
            (cycle, core_state(core))
        )

    def skip(self, core_id: int, start: int, end: int, state: str) -> None:
        """Fast path: the scheduler skipped ``[start, end]`` for one core.

        Recorded as an explicit span marker rather than dropped, so the
        reconstructed segments cover every cycle the dense loop would
        have sampled.
        """
        if end < start:
            return
        self._skips.setdefault(core_id, []).append(
            SkippedSpan(core_id, start, end, state)
        )

    def idle(self, cycle: int, delta: int, cores) -> None:
        """Legacy global-warp hook: all cores skipped ``delta`` cycles."""
        for core in cores:
            self.skip(core.core_id, cycle + 1, cycle + delta, core_state(core))

    # -- analysis ------------------------------------------------------------------
    def skipped_spans(self, core: int) -> list[SkippedSpan]:
        """The skip markers recorded for one core, in insertion order."""
        return list(self._skips.get(core, ()))

    def _points(self, core: int) -> list[tuple[int, str]]:
        """Samples plus skip-span endpoints, as one sorted point list."""
        points = list(self._samples.get(core, ()))
        for span in self._skips.get(core, ()):
            points.append((span.start, span.state))
            if span.end != span.start:
                points.append((span.end, span.state))
        points.sort()
        return points

    def segments(self, core: int) -> list[Segment]:
        """Compressed, gap-free state segments for one core."""
        samples = self._points(core)
        if not samples:
            return []
        out: list[Segment] = []
        start_cycle, state = samples[0]
        prev_cycle = start_cycle
        for cycle, s in samples[1:]:
            if s != state:
                out.append(Segment(core, start_cycle, max(prev_cycle, cycle - 1), state))
                start_cycle, state = cycle, s
            prev_cycle = cycle
        out.append(Segment(core, start_cycle, prev_cycle, state))
        return out

    def state_cycles(self, core: int) -> dict[str, int]:
        """Total cycles per state for one core."""
        totals: dict[str, int] = {}
        for seg in self.segments(core):
            totals[seg.state] = totals.get(seg.state, 0) + seg.length
        return totals

    def cores(self) -> list[int]:
        return sorted(set(self._samples) | set(self._skips))

    def render(self, max_segments: int = 12) -> str:
        """Human-readable per-core timeline."""
        lines = []
        for core in self.cores():
            segs = self.segments(core)
            shown = segs[:max_segments]
            parts = [f"{s.start}-{s.end} {s.state}" for s in shown]
            if len(segs) > max_segments:
                parts.append(f"... (+{len(segs) - max_segments} segments)")
            lines.append(f"core {core} | " + " | ".join(parts))
        return "\n".join(lines)
