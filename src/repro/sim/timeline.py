"""Per-cycle execution timeline for small runs (debugging/teaching).

Attach a :class:`TimelineRecorder` to a :class:`Simulator` to capture,
for every core and cycle, whether the core dispatched work, stalled at
a fence, waited on a full ROB/store buffer, or idled.  ``render``
compresses the recording into per-core segments -- a poor man's
pipeline viewer that makes fence stalls visible at a glance:

    core 0 | 0-11 run | 12-310 fence | 311-320 run | ...

The recorder costs a callback per simulated cycle; use it on small
programs only (the benchmarks never enable it).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Segment:
    core: int
    start: int
    end: int      # inclusive
    state: str

    @property
    def length(self) -> int:
        return self.end - self.start + 1


class TimelineRecorder:
    """Collects one state sample per (cycle, core)."""

    def __init__(self) -> None:
        self._samples: dict[int, list[tuple[int, str]]] = {}

    # -- Simulator hooks ---------------------------------------------------------
    def sample(self, cycle: int, cores) -> None:
        for core in cores:
            if core.finished and not core.stall_reason:
                state = "done"
            elif core.stall_reason:
                state = core.stall_reason
            else:
                state = "run"
            self._samples.setdefault(core.core_id, []).append((cycle, state))

    def idle(self, cycle: int, delta: int, cores) -> None:
        """The simulator warped over ``delta`` quiet cycles."""
        for core in cores:
            state = "done" if core.finished else (core.stall_reason or "wait")
            samples = self._samples.setdefault(core.core_id, [])
            samples.append((cycle + 1, state))
            samples.append((cycle + delta, state))

    # -- analysis ------------------------------------------------------------------
    def segments(self, core: int) -> list[Segment]:
        """Compressed, gap-free state segments for one core."""
        samples = sorted(self._samples.get(core, ()))
        if not samples:
            return []
        out: list[Segment] = []
        start_cycle, state = samples[0]
        prev_cycle = start_cycle
        for cycle, s in samples[1:]:
            if s != state:
                out.append(Segment(core, start_cycle, max(prev_cycle, cycle - 1), state))
                start_cycle, state = cycle, s
            prev_cycle = cycle
        out.append(Segment(core, start_cycle, prev_cycle, state))
        return out

    def state_cycles(self, core: int) -> dict[str, int]:
        """Total cycles per state for one core."""
        totals: dict[str, int] = {}
        for seg in self.segments(core):
            totals[seg.state] = totals.get(seg.state, 0) + seg.length
        return totals

    def cores(self) -> list[int]:
        return sorted(self._samples)

    def render(self, max_segments: int = 12) -> str:
        """Human-readable per-core timeline."""
        lines = []
        for core in self.cores():
            segs = self.segments(core)
            shown = segs[:max_segments]
            parts = [f"{s.start}-{s.end} {s.state}" for s in shown]
            if len(segs) > max_segments:
                parts.append(f"... (+{len(segs) - max_segments} segments)")
            lines.append(f"core {core} | " + " | ".join(parts))
        return "\n".join(lines)
