"""Per-core and aggregate simulation statistics.

The figures in the paper's evaluation section are built from two
numbers per run: total execution cycles of the parallel section and the
cycles in which instruction issue was stalled by a fence ("Fence
Stalls" vs. "Others" in Figures 13-16).  ``CoreStats``/``SimStats``
collect those plus supporting counters (cache hit rates, ROB occupancy
for the Figure 16 discussion, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class CoreStats:
    """Counters for a single core.

    Slotted: counter bumps are the single hottest attribute writes in
    the simulator (several per dispatched op, every engine), and slot
    descriptors are measurably cheaper than a dict-backed dataclass.
    """

    core_id: int = 0
    cycles: int = 0                 # cycles until this core's thread finished
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    cas_ops: int = 0
    fences: int = 0
    fence_stall_cycles: int = 0     # dispatch blocked by a fence/CAS ordering
    sfence_early_issues: int = 0    # fences that issued while unscoped ops pending
    rob_full_stalls: int = 0
    sb_full_stalls: int = 0
    mshr_stalls: int = 0
    branch_mispredicts: int = 0
    scope_overflows: int = 0        # cycles-with-overflow-counter-nonzero events
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    sb_forwards: int = 0
    rob_occupancy_sum: int = 0      # summed each cycle while running
    rob_occupancy_samples: int = 0

    @property
    def avg_rob_occupancy(self) -> float:
        if not self.rob_occupancy_samples:
            return 0.0
        return self.rob_occupancy_sum / self.rob_occupancy_samples

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0


@dataclass
class SimStats:
    """Aggregate statistics for a whole simulation run."""

    cores: list[CoreStats] = field(default_factory=list)
    total_cycles: int = 0           # parallel-section execution time (max over cores)

    @property
    def fence_stall_cycles(self) -> int:
        """Total fence-stall cycles across cores."""
        return sum(c.fence_stall_cycles for c in self.cores)

    @property
    def instructions(self) -> int:
        return sum(c.instructions for c in self.cores)

    @property
    def fences(self) -> int:
        return sum(c.fences for c in self.cores)

    @property
    def fence_stall_fraction(self) -> float:
        """Fence stalls as a fraction of total core-cycles (Fig. 13 split)."""
        busy = sum(c.cycles for c in self.cores)
        return self.fence_stall_cycles / busy if busy else 0.0

    @property
    def avg_rob_occupancy(self) -> float:
        vals = [c.avg_rob_occupancy for c in self.cores if c.rob_occupancy_samples]
        return sum(vals) / len(vals) if vals else 0.0

    def summary(self) -> dict:
        """Flat dict of the headline numbers (for reports/tests)."""
        return {
            "total_cycles": self.total_cycles,
            "instructions": self.instructions,
            "fences": self.fences,
            "fence_stall_cycles": self.fence_stall_cycles,
            "fence_stall_fraction": round(self.fence_stall_fraction, 4),
            "avg_rob_occupancy": round(self.avg_rob_occupancy, 1),
            "l1_hits": sum(c.l1_hits for c in self.cores),
            "l1_misses": sum(c.l1_misses for c in self.cores),
        }
