"""Structured memory-access tracing.

A :class:`TraceCollector` attached to a :class:`~repro.sim.simulator.Simulator`
records every dispatched memory access as ``(core, kind, addr)``.  The
delay-set classifier (:mod:`repro.apps.delay_set`) consumes such traces
to partition addresses into private / shared-read-only /
shared-conflicting, the partition end-to-end-SC fence insertion relies
on for barnes and radiosity (Section VI-B).
"""

from __future__ import annotations

from dataclasses import dataclass

KIND_LOAD = "load"
KIND_STORE = "store"
KIND_CAS = "cas"


@dataclass(frozen=True)
class TraceRecord:
    core: int
    kind: str
    addr: int


class TraceCollector:
    """Accumulates memory-access records during a run."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(self, core: int, kind: str, addr: int) -> None:
        self.records.append(TraceRecord(core, kind, addr))

    def __len__(self) -> int:
        return len(self.records)

    def by_addr(self) -> dict[int, list[TraceRecord]]:
        out: dict[int, list[TraceRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.addr, []).append(rec)
        return out
