"""Structured memory-access tracing.

A :class:`TraceCollector` attached to a :class:`~repro.sim.simulator.Simulator`
records every dispatched memory access as ``(core, kind, addr)``.  The
delay-set classifier (:mod:`repro.apps.delay_set`) consumes such traces
to partition addresses into private / shared-read-only /
shared-conflicting, the partition end-to-end-SC fence insertion relies
on for barnes and radiosity (Section VI-B).

A second, finer-grained stream exists for the chaos harness: a *monitor*
attached to a core (``Core.monitor``) receives every ordering-relevant
event -- memory-op dispatch/completion/drain with the op's FSB bitmask,
fence issue and completion with the resolved scope, scope open/close
with the FSB entry the mapping table assigned, and mispredict squashes.
:class:`OrderEvent` is the uniform record; :class:`OrderEventLog`
implements the monitor protocol by recording, and can :meth:`replay
<OrderEventLog.replay>` its records into any other monitor (e.g. the
ordering-invariant checker in :mod:`repro.chaos.invariants`).
"""

from __future__ import annotations

from dataclasses import dataclass

KIND_LOAD = "load"
KIND_STORE = "store"
KIND_CAS = "cas"

# OrderEvent.kind values (the monitor-protocol method each maps to)
EV_MEM_DISPATCH = "mem_dispatch"
EV_MEM_COMPLETE = "mem_complete"
EV_STORE_DRAIN = "store_drain"
EV_FENCE_OPEN = "fence_open"      # speculatively issued, completes later
EV_FENCE_COMPLETE = "fence_complete"
EV_FENCE_PASS = "fence_pass"      # blocking fence whose condition held
EV_SCOPE = "scope"                # fs_start / fs_end
EV_SQUASH = "squash"              # branch mispredict restored FSS from FSS'
EV_COHERENCE_SYNC = "coherence_sync"  # backend sync point (SiSd SI/SD)


@dataclass(frozen=True)
class TraceRecord:
    core: int
    kind: str
    addr: int


class TraceCollector:
    """Accumulates memory-access records during a run."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(self, core: int, kind: str, addr: int) -> None:
        self.records.append(TraceRecord(core, kind, addr))

    def __len__(self) -> int:
        return len(self.records)

    def by_addr(self) -> dict[int, list[TraceRecord]]:
        out: dict[int, list[TraceRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.addr, []).append(rec)
        return out


@dataclass(frozen=True)
class OrderEvent:
    """One ordering-relevant event from a core's monitor stream.

    Field use per ``kind``:

    =================  ===============================================
    mem_dispatch       op, addr, seq, mask, flagged
    mem_complete       op ("load"/"store"), seq
    store_drain        seq
    fence_open         fid, op (fence kind), waits, scope, seq
    fence_complete     fid
    fence_pass         op (fence kind), waits, scope, seq
    scope              op ("start"/"end"), cid, scope (FSB entry or
                       ScopeTracker.OVERFLOWED / .UNMATCHED)
    squash             scopes (post-restore FSS), overflow
    coherence_sync     op ("acquire"/"release"/"full"), invalidated,
                       downgraded (SiSd self-invalidate/self-downgrade)
    =================  ===============================================
    """

    kind: str
    core: int
    cycle: int
    op: str = ""
    addr: int = -1
    seq: int = -1
    mask: int = 0
    flagged: bool = False
    waits: int = 0
    scope: int = 0
    fid: int = -1
    cid: int = -1
    scopes: tuple[int, ...] = ()
    overflow: int = 0
    invalidated: int = 0
    downgraded: int = 0


class OrderEventLog:
    """Records the monitor protocol as :class:`OrderEvent` rows.

    Implements every ``on_*`` hook a :class:`~repro.cpu.core.Core`
    monitor needs, so it can be attached directly (``core.monitor``) or
    sit in front of a checker via :class:`MonitorFanout`.
    """

    def __init__(self, limit: int | None = None) -> None:
        self.events: list[OrderEvent] = []
        self.limit = limit  # keep only the newest ``limit`` events

    def _push(self, ev: OrderEvent) -> None:
        self.events.append(ev)
        if self.limit is not None and len(self.events) > self.limit:
            del self.events[: len(self.events) - self.limit]

    # -- monitor protocol -----------------------------------------------------
    def on_mem_dispatch(self, core, cycle, seq, op, addr, mask, flagged) -> None:
        self._push(OrderEvent(EV_MEM_DISPATCH, core, cycle, op=op, addr=addr,
                              seq=seq, mask=mask, flagged=flagged))

    def on_mem_complete(self, core, cycle, seq, is_load) -> None:
        self._push(OrderEvent(EV_MEM_COMPLETE, core, cycle,
                              op=KIND_LOAD if is_load else KIND_STORE, seq=seq))

    def on_store_drain(self, core, cycle, seq) -> None:
        self._push(OrderEvent(EV_STORE_DRAIN, core, cycle, seq=seq))

    def on_fence_open(self, core, cycle, fid, kind, waits, scope, seq) -> None:
        self._push(OrderEvent(EV_FENCE_OPEN, core, cycle, op=kind, waits=waits,
                              scope=scope, seq=seq, fid=fid))

    def on_fence_complete(self, core, cycle, fid) -> None:
        self._push(OrderEvent(EV_FENCE_COMPLETE, core, cycle, fid=fid))

    def on_fence_pass(self, core, cycle, kind, waits, scope, seq) -> None:
        self._push(OrderEvent(EV_FENCE_PASS, core, cycle, op=kind, waits=waits,
                              scope=scope, seq=seq))

    def on_scope(self, core, cycle, action, cid, entry) -> None:
        self._push(OrderEvent(EV_SCOPE, core, cycle, op=action, cid=cid,
                              scope=entry))

    def on_squash(self, core, cycle, scopes, overflow) -> None:
        self._push(OrderEvent(EV_SQUASH, core, cycle, scopes=tuple(scopes),
                              overflow=overflow))

    def on_coherence_sync(self, core, cycle, kind, invalidated, downgraded) -> None:
        self._push(OrderEvent(EV_COHERENCE_SYNC, core, cycle, op=kind,
                              invalidated=invalidated, downgraded=downgraded))

    # -- consumption ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def replay(self, monitor) -> None:
        """Feed every recorded event into another monitor, in order."""
        for ev in self.events:
            dispatch_event(monitor, ev)


def dispatch_event(monitor, ev: OrderEvent) -> None:
    """Deliver one :class:`OrderEvent` record via the monitor protocol."""
    k = ev.kind
    if k == EV_MEM_DISPATCH:
        monitor.on_mem_dispatch(ev.core, ev.cycle, ev.seq, ev.op, ev.addr,
                                ev.mask, ev.flagged)
    elif k == EV_MEM_COMPLETE:
        monitor.on_mem_complete(ev.core, ev.cycle, ev.seq, ev.op == KIND_LOAD)
    elif k == EV_STORE_DRAIN:
        monitor.on_store_drain(ev.core, ev.cycle, ev.seq)
    elif k == EV_FENCE_OPEN:
        monitor.on_fence_open(ev.core, ev.cycle, ev.fid, ev.op, ev.waits,
                              ev.scope, ev.seq)
    elif k == EV_FENCE_COMPLETE:
        monitor.on_fence_complete(ev.core, ev.cycle, ev.fid)
    elif k == EV_FENCE_PASS:
        monitor.on_fence_pass(ev.core, ev.cycle, ev.op, ev.waits, ev.scope, ev.seq)
    elif k == EV_SCOPE:
        monitor.on_scope(ev.core, ev.cycle, ev.op, ev.cid, ev.scope)
    elif k == EV_SQUASH:
        monitor.on_squash(ev.core, ev.cycle, ev.scopes, ev.overflow)
    elif k == EV_COHERENCE_SYNC:
        monitor.on_coherence_sync(ev.core, ev.cycle, ev.op, ev.invalidated,
                                  ev.downgraded)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown OrderEvent kind {k!r}")


class MonitorFanout:
    """Forward the monitor protocol to several sinks (log + checker)."""

    def __init__(self, *sinks) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def __getattr__(self, name):
        if not name.startswith("on_"):
            raise AttributeError(name)
        sinks = self.sinks
        def fan(*args, **kwargs):
            for sink in sinks:
                getattr(sink, name)(*args, **kwargs)
        return fan
