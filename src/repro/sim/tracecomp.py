"""Trace compilation: straight-line guest op runs as admissible blocks.

The event engine (PR 3) removed idle cycles; what remains of the wall
is per-op cost -- every guest op is pulled out of a Python generator
and walked through ``Core._dispatch_one``'s full case analysis, even
for long fence-free runs of loads/stores/computes whose handling is
fully determined at first sight.  This module compiles such runs once
and lets the core admit them through a fused batch path
(``Core._dispatch_compiled``).

**Block formation.**  A *straight-line run* is a maximal sequence of
ops that are all :class:`~repro.isa.instructions.Load` /
:class:`~repro.isa.instructions.Store` /
:class:`~repro.isa.instructions.Compute` with no cut point in between.
The cut-point taxonomy (everything that ends a block and is dispatched
through the unabridged interpreter path):

* ``Branch``      -- opens speculation, may squash scope state;
* ``Fence``       -- ordering decision, may stall or open a group;
* ``FsStart`` / ``FsEnd`` -- change the FSS and hence the FSB mask
  every in-block memory op is stamped with;
* ``Cas``         -- serializes dispatch and publishes synchronously;
* ``Probe``       -- runs arbitrary instrumentation;
* flagged loads/stores -- carry the set-scope FSB bit;
* ``serialize`` loads -- block younger dispatch (address dependency).

Within a block the FSB mask is therefore *constant* (it only changes
at scope delimiters, flagged ops or a squash, all of which are cut
points or tick-phase events that cannot interleave with one
admission), which is what makes batched scope-tracker accounting
sound.

**Where blocks come from.**  Guest control flow may depend on loaded
values (``q = yield inter.load(...)``), so the simulator can never pull
ahead of the op it is about to dispatch in a *dynamic* guest -- block
formation by lookahead would change which memory state the guest
observes.  Blocks are instead formed from the two sources where the
op stream is known not to consume results:

* **static programs** -- :func:`repro.isa.program.ops_program` threads
  carry their op list; :func:`compile_ops` segments it once per
  program (memoised by block signature, shared across programs);
* **block hints** -- a dynamic guest (or the runtime layer,
  :mod:`repro.runtime.lang`) yields a :class:`BlockHint` wrapping ops
  whose results it promises not to consume.  Every engine expands the
  hint to the identical per-op stream; the compiled engine additionally
  batch-admits its straight-line runs.  The guest receives ``None``
  back from the hint's yield.

**Memoisation.**  Compiled blocks are keyed by a stable signature
(the tuple of per-op descriptors), so the same straight-line run
compiles once per process no matter how many programs, offsets or
campaign jobs replay it.

Dispatch-time fallback -- capacity hazards (ROB/store-buffer/MSHR),
dispatch-width exhaustion, ``_blocked_until`` -- does not need the
interpreter: the block keeps a cursor and admission resumes exactly
where it stopped, while monitor/tracer instrumentation and SC dispatch
rules route every op through ``Core._dispatch_one`` unchanged (see
docs/architecture.md §16 for the full contract).
"""

from __future__ import annotations

from ..isa.instructions import Compute, Load, Op, Store

# descriptor kinds, aligned with repro.cpu.rob for direct RobEntry use
from ..cpu.rob import K_COMPUTE, K_LOAD, K_STORE  # noqa: F401  (re-exported)

#: ops that may appear inside a block; anything else is a cut point
BLOCK_OPS = (Load, Store, Compute)

#: process-wide signature -> CompiledBlock memo (blocks are immutable
#: and stateless: the admission cursor lives on the core, not here)
_BLOCK_MEMO: dict[tuple, "CompiledBlock"] = {}


def block_signature(ops) -> tuple:
    """Stable per-op descriptor tuple identifying a straight-line run."""
    sig = []
    for op in ops:
        cls = type(op)
        if cls is Load:
            sig.append((K_LOAD, op.addr, 0))
        elif cls is Store:
            sig.append((K_STORE, op.addr, op.value))
        else:  # Compute
            sig.append((K_COMPUTE, max(1, op.cycles), 0))
    return tuple(sig)


class CompiledBlock:
    """One compiled straight-line run.

    ``kinds``/``addrs``/``values`` are parallel tuples the fused
    admission loop indexes without touching the op objects; ``ops``
    keeps the originals for the instrumented (monitor/tracer/SC)
    fallback, which dispatches them through the interpreter one by one.
    """

    __slots__ = ("signature", "ops", "kinds", "addrs", "values",
                 "n", "n_loads", "n_stores")

    def __init__(self, ops: tuple, signature: tuple) -> None:
        self.signature = signature
        self.ops = ops
        self.kinds = tuple(d[0] for d in signature)
        self.addrs = tuple(d[1] for d in signature)
        self.values = tuple(d[2] for d in signature)
        self.n = len(ops)
        self.n_loads = sum(1 for k in self.kinds if k == K_LOAD)
        self.n_stores = sum(1 for k in self.kinds if k == K_STORE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CompiledBlock n={self.n} loads={self.n_loads} "
                f"stores={self.n_stores}>")


class BlockHint:
    """Guest-yieldable batch of ops whose results the guest discards.

    ``yield BlockHint(ops)`` behaves, on every engine, exactly like
    yielding each op in sequence and ignoring every sent-back value;
    the hint's own yield receives ``None``.  The compiled engine
    additionally admits the hint's straight-line runs as blocks.

    Ops with consumed results (a load whose value steers control flow)
    must not be hinted -- the guest would receive ``None`` instead of
    the value.  Cut-point ops *are* allowed: they simply segment the
    hint into several blocks with interpreted ops in between.
    """

    __slots__ = ("ops", "_units")

    def __init__(self, ops) -> None:
        ops = tuple(ops)
        for op in ops:
            if not isinstance(op, Op):
                raise TypeError(f"BlockHint contains non-Op {op!r}")
        self.ops = ops
        self._units = None  # lazily compiled unit list (compiled engine)

    def units(self) -> list:
        """The hint's compiled unit stream (memoised on the hint)."""
        if self._units is None:
            self._units = compile_ops(self.ops)
        return self._units

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BlockHint n={len(self.ops)}>"


def _blockable(op: Op) -> bool:
    """May ``op`` live inside a block?  (See the cut-point taxonomy.)"""
    cls = type(op)
    if cls is Load:
        return not (op.flagged or op.serialize)
    if cls is Store:
        return not op.flagged
    return cls is Compute


def _make_block(run: list) -> CompiledBlock:
    ops = tuple(run)
    sig = block_signature(ops)
    blk = _BLOCK_MEMO.get(sig)
    if blk is None:
        blk = CompiledBlock(ops, sig)
        _BLOCK_MEMO[sig] = blk
    return blk


#: runs shorter than this dispatch as plain ops: a one-op "block" costs
#: more in cursor bookkeeping than the type switch it avoids
MIN_BLOCK = 2


def compile_ops(ops, min_block: int = MIN_BLOCK) -> list:
    """Segment an op sequence into ``CompiledBlock`` / cut-op units.

    Returns a list whose elements are either a :class:`CompiledBlock`
    (a straight-line run of at least ``min_block`` ops) or an original
    :class:`~repro.isa.instructions.Op` (a cut point, or a run too
    short to be worth a block).
    """
    units: list = []
    run: list = []
    for op in ops:
        if _blockable(op):
            run.append(op)
            continue
        if run:
            if len(run) >= min_block:
                units.append(_make_block(run))
            else:
                units.extend(run)
            run = []
        units.append(op)
    if run:
        if len(run) >= min_block:
            units.append(_make_block(run))
        else:
            units.extend(run)
    return units


def compile_program(program) -> list[list] | None:
    """Per-thread unit streams for a static program; ``None`` if dynamic.

    Only programs built by :func:`repro.isa.program.ops_program` carry
    their op lists (``static_thread_ops``); a generator-backed program
    has value-dependent control flow the compiler must not second-guess.
    The result is memoised on the program object.
    """
    static = getattr(program, "static_thread_ops", None)
    if static is None:
        return None
    cached = getattr(program, "_compiled_units", None)
    if cached is not None:
        return cached
    units = [compile_ops(ops) for ops in static]
    program._compiled_units = units
    return units


def memo_stats() -> dict:
    """Block-cache occupancy (for the micro-benchmark and tests)."""
    blocks = list(_BLOCK_MEMO.values())
    return {
        "blocks": len(blocks),
        "ops": sum(b.n for b in blocks),
    }
