"""Perf-regression harness: dense reference loop vs event-driven fast path.

Times representative workloads under both execution engines and reports
wall time, simulated cycles per second and the fast-path speedup for
each -- the numbers that guard the event scheduler against performance
regressions (the equivalence *tests* guard it against correctness
regressions; this module additionally cross-checks a result fingerprint
per workload so a perf run that silently diverged is flagged).

Workloads:

* ``litmus``    -- the litmus corpus over a small offset grid: many
  short runs, scheduler-overhead bound (the fast path's worst case).
* ``fig15-500`` -- the Figure 15 high-memory-latency cell exactly as
  the figure runs it (radiosity under a traditional global fence at
  500-cycle memory).  At 500 cycles much of the latency still overlaps
  with form-factor compute, so this measures the mixed regime.
* ``fig15-hot`` -- the same cell with the figure's memory-latency axis
  pushed to 2000 cycles, deep into the stall-dominated regime Figure
  15's trend points at: the dense loop's cost grows linearly with the
  latency while the fast path's stays flat, which is the property the
  CI gate checks (the headline speedup).  (barnes, the figure's other
  latency-sensitive app, is busy-polling-bound on this simulator --
  some core makes progress on most cycles -- so it measures scheduler
  overhead, not skipping.)
* ``cilk_fib``  -- fork-join work stealing across 8 cores: mixed
  compute/steal phases, in between the other two.

``python -m repro perf`` drives this module and writes
``BENCH_simperf.json``; ``--smoke`` shrinks every workload for CI.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..sim.config import SimConfig

#: headline workload the CI perf gate applies its minimum speedup to
GATE_WORKLOAD = "fig15-hot"


@dataclass(frozen=True)
class Workload:
    """One timed scenario; ``run`` returns (simulated_cycles, fingerprint)."""

    name: str
    description: str

    def run(self, dense_loop: bool, smoke: bool, mem_backend: str = "mesi"):  # pragma: no cover - dispatch
        raise NotImplementedError


class _LitmusWorkload(Workload):
    def run(self, dense_loop: bool, smoke: bool, mem_backend: str = "mesi"):
        from ..litmus.corpus import CORPUS
        from ..litmus.dsl import parse_litmus, run_litmus

        offsets = [0, 3] if smoke else [0, 17, 160]
        cycles = 0
        fingerprint = []
        for entry in CORPUS:
            test = parse_litmus(entry.source)
            run = run_litmus(test, offsets=offsets, dense_loop=dense_loop,
                             mem_backend=mem_backend)
            cycles += run.total_cycles
            fingerprint.append(
                (entry.name, sorted(run.outcomes), run.condition_observed)
            )
        return cycles, fingerprint


@dataclass(frozen=True)
class _Fig15Workload(Workload):
    mem_latency: int = 500

    def run(self, dense_loop: bool, smoke: bool, mem_backend: str = "mesi"):
        from ..analysis.speedup import measure
        from ..campaign.figures import _app_builders
        from ..isa.instructions import FenceKind

        scale = 0.25 if smoke else 1.0
        builder, _native = _app_builders(scale)["radiosity"]
        cfg = SimConfig(mem_latency=self.mem_latency, dense_loop=dense_loop,
                        mem_backend=mem_backend)
        point = measure(
            lambda env: builder(env, FenceKind.GLOBAL), cfg, label=self.name
        )
        return point.cycles, point.stats_summary


class _CilkFibWorkload(Workload):
    def run(self, dense_loop: bool, smoke: bool, mem_backend: str = "mesi"):
        from ..analysis.speedup import measure
        from ..apps.cilk_fib import build_cilk_fib

        n = 8 if smoke else 11
        cfg = SimConfig(dense_loop=dense_loop, mem_backend=mem_backend)
        point = measure(
            lambda env: build_cilk_fib(env, n=n), cfg, label="cilk_fib"
        )
        return point.cycles, point.stats_summary


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        _LitmusWorkload("litmus", "litmus corpus sweep (many short runs)"),
        _Fig15Workload(
            "fig15-500",
            "radiosity, global fence, 500-cycle memory (the fig15 cell)",
            mem_latency=500,
        ),
        _Fig15Workload(
            GATE_WORKLOAD,
            "radiosity, global fence, fig15 latency axis at 2000 cycles",
            mem_latency=2000,
        ),
        _CilkFibWorkload("cilk_fib", "fork-join fib across 8 cores"),
    )
}


def _timed(workload: Workload, dense_loop: bool, smoke: bool,
           mem_backend: str = "mesi"):
    from ..runtime.lang import reset_cids

    reset_cids()
    t0 = time.perf_counter()
    cycles, fingerprint = workload.run(dense_loop=dense_loop, smoke=smoke,
                                       mem_backend=mem_backend)
    wall = time.perf_counter() - t0
    return wall, cycles, fingerprint


def run_perf(
    workloads: list[str] | None = None,
    smoke: bool = False,
    min_speedup: float | None = None,
    progress=None,
    mem_backend: str = "mesi",
) -> dict:
    """Time every requested workload dense vs fast; return the report.

    The report is JSON-ready.  ``ok`` is False if any workload's
    dense/fast fingerprints diverge (a correctness failure surfacing in
    the perf harness) or if the :data:`GATE_WORKLOAD` speedup falls
    below ``min_speedup``.
    """
    names = list(WORKLOADS) if workloads is None else list(workloads)
    for name in names:
        if name not in WORKLOADS:
            raise KeyError(f"unknown perf workload {name!r} (have {sorted(WORKLOADS)})")
    report: dict = {"smoke": smoke, "mem_backend": mem_backend,
                    "workloads": {}, "ok": True}
    for name in names:
        w = WORKLOADS[name]
        if progress is not None:
            progress(f"[perf] {name}: dense loop ...")
        dense_wall, dense_cycles, dense_fp = _timed(w, True, smoke, mem_backend)
        if progress is not None:
            progress(f"[perf] {name}: fast path ...")
        fast_wall, fast_cycles, fast_fp = _timed(w, False, smoke, mem_backend)
        identical = dense_fp == fast_fp and dense_cycles == fast_cycles
        entry = {
            "description": w.description,
            "sim_cycles": fast_cycles,
            "dense_wall_s": round(dense_wall, 4),
            "fast_wall_s": round(fast_wall, 4),
            "dense_cycles_per_s": round(dense_cycles / dense_wall) if dense_wall else None,
            "fast_cycles_per_s": round(fast_cycles / fast_wall) if fast_wall else None,
            "speedup": round(dense_wall / fast_wall, 2) if fast_wall else None,
            "identical": identical,
        }
        report["workloads"][name] = entry
        if not identical:
            report["ok"] = False
        if progress is not None:
            progress(
                f"[perf] {name}: {entry['speedup']}x "
                f"({entry['dense_wall_s']}s dense -> {entry['fast_wall_s']}s fast, "
                f"{fast_cycles} cycles)"
                + ("" if identical else "  ** RESULTS DIVERGED **")
            )
    if min_speedup is not None:
        gate = report["workloads"].get(GATE_WORKLOAD)
        if gate is None:
            # gate workload not in the requested subset: record that the
            # gate did not run rather than failing a partial sweep
            report["gate"] = {"workload": GATE_WORKLOAD,
                              "min_speedup": min_speedup, "skipped": True}
        else:
            report["gate"] = {
                "workload": GATE_WORKLOAD,
                "min_speedup": min_speedup,
                "speedup": gate["speedup"],
                "passed": bool(gate["speedup"] is not None
                               and gate["speedup"] >= min_speedup),
            }
            if not report["gate"]["passed"]:
                report["ok"] = False
    return report


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
