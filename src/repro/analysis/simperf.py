"""Perf-regression harness: the three execution engines head to head.

Times representative workloads under the dense reference loop, the
event-driven fast path (``trace_compile=False``) and the trace-compiled
engine (the default mode) and reports wall time, simulated cycles per
second and the speedups between them -- the numbers that guard both
fast engines against performance regressions (the equivalence *tests*
guard them against correctness regressions; this module additionally
cross-checks a result fingerprint per workload/engine/backend so a perf
run that silently diverged is flagged and named in the exit status).

Workloads:

* ``litmus``    -- the litmus corpus over a small offset grid: many
  short runs, scheduler-overhead bound (the fast engines' worst case).
* ``fig15-500`` -- the Figure 15 high-memory-latency cell exactly as
  the figure runs it (radiosity under a traditional global fence at
  500-cycle memory).  At 500 cycles much of the latency still overlaps
  with form-factor compute, so this measures the mixed regime.
* ``fig15-hot`` -- the same cell with the figure's memory-latency axis
  pushed to 2000 cycles, deep into the stall-dominated regime Figure
  15's trend points at: the dense loop's cost grows linearly with the
  latency while the fast engines' stays flat, which is the property
  the CI gate checks (the headline speedups).  (barnes, the figure's
  other latency-sensitive app, is busy-polling-bound on this simulator
  -- some core makes progress on most cycles -- so it measures
  scheduler overhead, not skipping.)
* ``cilk_fib``  -- fork-join work stealing across 8 cores: mixed
  compute/steal phases, in between the other two.

Timing protocol: the dense loop is timed once (it is the slow column
and only serves as the common baseline); the event and compiled
engines are timed ``reps`` times in interleaved pairs and the *minimum*
wall per engine is reported.  A single-shot ratio of two sub-second
walls is hostage to scheduler noise; min-of-N of each side is the
standard estimator of the noise floor and is what the compile-ratio
gate is judged on.

``python -m repro perf`` drives this module and writes
``BENCH_simperf.json``; ``--smoke`` shrinks every workload for CI, and
``--mem-backend mesi,sisd`` adds a per-backend column set per workload.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from ..sim.config import MEM_BACKENDS, SimConfig

#: headline workload the CI perf gates apply their minimums to
GATE_WORKLOAD = "fig15-hot"

#: timed repetitions per fast engine (min wall wins)
DEFAULT_REPS = 3

#: engine name -> SimConfig flags
ENGINES = {
    "dense": {"dense_loop": True},
    "event": {"dense_loop": False, "trace_compile": False},
    "compiled": {"dense_loop": False, "trace_compile": True},
}


@dataclass(frozen=True)
class Workload:
    """One timed scenario; ``run`` returns (simulated_cycles, fingerprint)."""

    name: str
    description: str

    def run(self, smoke: bool, dense_loop: bool = False,
            trace_compile: bool = True,
            mem_backend: str = "mesi"):  # pragma: no cover - dispatch
        raise NotImplementedError


class _LitmusWorkload(Workload):
    def run(self, smoke: bool, dense_loop: bool = False,
            trace_compile: bool = True, mem_backend: str = "mesi"):
        from ..litmus.corpus import CORPUS
        from ..litmus.dsl import parse_litmus, run_litmus

        offsets = [0, 3] if smoke else [0, 17, 160]
        cycles = 0
        fingerprint = []
        for entry in CORPUS:
            test = parse_litmus(entry.source)
            run = run_litmus(test, offsets=offsets, dense_loop=dense_loop,
                             trace_compile=trace_compile,
                             mem_backend=mem_backend)
            cycles += run.total_cycles
            fingerprint.append(
                (entry.name, sorted(run.outcomes), run.condition_observed)
            )
        return cycles, fingerprint


@dataclass(frozen=True)
class _Fig15Workload(Workload):
    mem_latency: int = 500

    def run(self, smoke: bool, dense_loop: bool = False,
            trace_compile: bool = True, mem_backend: str = "mesi"):
        from ..analysis.speedup import measure
        from ..campaign.figures import _app_builders
        from ..isa.instructions import FenceKind

        scale = 0.25 if smoke else 1.0
        builder, _native = _app_builders(scale)["radiosity"]
        cfg = SimConfig(mem_latency=self.mem_latency, dense_loop=dense_loop,
                        trace_compile=trace_compile, mem_backend=mem_backend)
        point = measure(
            lambda env: builder(env, FenceKind.GLOBAL), cfg, label=self.name
        )
        return point.cycles, point.stats_summary


class _CilkFibWorkload(Workload):
    def run(self, smoke: bool, dense_loop: bool = False,
            trace_compile: bool = True, mem_backend: str = "mesi"):
        from ..analysis.speedup import measure
        from ..apps.cilk_fib import build_cilk_fib

        n = 8 if smoke else 11
        cfg = SimConfig(dense_loop=dense_loop, trace_compile=trace_compile,
                        mem_backend=mem_backend)
        point = measure(
            lambda env: build_cilk_fib(env, n=n), cfg, label="cilk_fib"
        )
        return point.cycles, point.stats_summary


WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        _LitmusWorkload("litmus", "litmus corpus sweep (many short runs)"),
        _Fig15Workload(
            "fig15-500",
            "radiosity, global fence, 500-cycle memory (the fig15 cell)",
            mem_latency=500,
        ),
        _Fig15Workload(
            GATE_WORKLOAD,
            "radiosity, global fence, fig15 latency axis at 2000 cycles",
            mem_latency=2000,
        ),
        _CilkFibWorkload("cilk_fib", "fork-join fib across 8 cores"),
    )
}


def _timed(workload: Workload, engine: str, smoke: bool, mem_backend: str):
    from ..runtime.lang import reset_cids

    reset_cids()
    t0 = time.perf_counter()
    cycles, fingerprint = workload.run(smoke=smoke, mem_backend=mem_backend,
                                       **ENGINES[engine])
    wall = time.perf_counter() - t0
    return wall, cycles, fingerprint


def _measure_backend(w: Workload, smoke: bool, mem_backend: str, reps: int,
                     progress=None) -> dict:
    """One (workload, backend) cell: dense once, fast engines min-of-reps."""
    dense_wall, dense_cycles, dense_fp = _timed(w, "dense", smoke, mem_backend)
    walls = {"event": [], "compiled": []}
    fps = {}
    cycles = {}
    # interleaved rep pairs so OS-level noise drifts hit both engines
    for _ in range(max(1, reps)):
        for engine in ("event", "compiled"):
            wall, cyc, fp = _timed(w, engine, smoke, mem_backend)
            walls[engine].append(wall)
            fps.setdefault(engine, fp)
            cycles.setdefault(engine, cyc)
    event_wall = min(walls["event"])
    compiled_wall = min(walls["compiled"])
    identical = all(
        fps[e] == dense_fp and cycles[e] == dense_cycles
        for e in ("event", "compiled")
    )
    cell = {
        "sim_cycles": dense_cycles,
        "dense_wall_s": round(dense_wall, 4),
        "event_wall_s": round(event_wall, 4),
        "compiled_wall_s": round(compiled_wall, 4),
        "dense_cycles_per_s": round(dense_cycles / dense_wall) if dense_wall else None,
        "event_cycles_per_s": round(dense_cycles / event_wall) if event_wall else None,
        "compiled_cycles_per_s": round(dense_cycles / compiled_wall) if compiled_wall else None,
        "event_speedup": round(dense_wall / event_wall, 2) if event_wall else None,
        "compiled_speedup": round(dense_wall / compiled_wall, 2) if compiled_wall else None,
        "compile_ratio": round(event_wall / compiled_wall, 2) if compiled_wall else None,
        "identical": identical,
    }
    if progress is not None:
        progress(
            f"[perf] {w.name}[{mem_backend}]: dense {cell['dense_wall_s']}s, "
            f"event {cell['event_wall_s']}s ({cell['event_speedup']}x), "
            f"compiled {cell['compiled_wall_s']}s "
            f"({cell['compiled_speedup']}x dense, "
            f"{cell['compile_ratio']}x event)"
            + ("" if identical else "  ** RESULTS DIVERGED **")
        )
    return cell


def run_perf(
    workloads: list[str] | None = None,
    smoke: bool = False,
    min_speedup: float | None = None,
    min_compile_ratio: float | None = None,
    progress=None,
    mem_backends: list[str] | tuple[str, ...] | str = ("mesi",),
    reps: int = DEFAULT_REPS,
) -> dict:
    """Time every requested workload under all three engines.

    The report is JSON-ready.  Each workload carries a per-backend
    column set plus its own ``gate`` verdict: the ``identical``
    cross-check applies to every workload, and the :data:`GATE_WORKLOAD`
    additionally enforces ``min_speedup`` (event vs dense) and
    ``min_compile_ratio`` (compiled vs event) on the primary backend.
    ``ok`` is False -- and ``failures`` names every offender -- if any
    per-workload gate fails.
    """
    names = list(WORKLOADS) if workloads is None else list(workloads)
    for name in names:
        if name not in WORKLOADS:
            raise KeyError(f"unknown perf workload {name!r} (have {sorted(WORKLOADS)})")
    if isinstance(mem_backends, str):
        mem_backends = [b.strip() for b in mem_backends.split(",") if b.strip()]
    backends = list(mem_backends) or ["mesi"]
    for b in backends:
        if b not in MEM_BACKENDS:
            raise KeyError(f"unknown mem backend {b!r} (have {list(MEM_BACKENDS)})")
    primary = backends[0]

    report: dict = {"smoke": smoke, "reps": reps, "mem_backends": backends,
                    "workloads": {}, "failures": [], "ok": True}
    for name in names:
        w = WORKLOADS[name]
        cells = {}
        for backend in backends:
            if progress is not None:
                progress(f"[perf] {name}[{backend}] ...")
            cells[backend] = _measure_backend(w, smoke, backend, reps,
                                              progress)
        entry = {"description": w.description, "backends": cells}
        # primary-backend columns flattened for table/CI consumers
        entry.update(cells[primary])
        gate = {"identical": all(c["identical"] for c in cells.values())}
        gate["passed"] = gate["identical"]
        if name == GATE_WORKLOAD:
            if min_speedup is not None:
                gate["min_speedup"] = min_speedup
                gate["speedup"] = entry["event_speedup"]
                gate["passed"] = gate["passed"] and bool(
                    entry["event_speedup"] is not None
                    and entry["event_speedup"] >= min_speedup
                )
            if min_compile_ratio is not None:
                gate["min_compile_ratio"] = min_compile_ratio
                gate["compile_ratio"] = entry["compile_ratio"]
                gate["passed"] = gate["passed"] and bool(
                    entry["compile_ratio"] is not None
                    and entry["compile_ratio"] >= min_compile_ratio
                )
        entry["gate"] = gate
        report["workloads"][name] = entry
        if not gate["passed"]:
            report["failures"].append(name)
            report["ok"] = False

    # headline gate summary (kept for CI log one-liners): records a skip
    # when the gate workload was not part of the requested subset
    if min_speedup is not None or min_compile_ratio is not None:
        gate_entry = report["workloads"].get(GATE_WORKLOAD)
        if gate_entry is None:
            report["gate"] = {"workload": GATE_WORKLOAD,
                              "min_speedup": min_speedup,
                              "min_compile_ratio": min_compile_ratio,
                              "skipped": True}
        else:
            report["gate"] = dict(gate_entry["gate"], workload=GATE_WORKLOAD)
    return report


def divergent_cells(report: dict) -> list[str]:
    """Every ``workload[backend]`` whose identical cross-check failed."""
    out = []
    for name, entry in report["workloads"].items():
        for backend, cell in entry["backends"].items():
            if not cell["identical"]:
                out.append(f"{name}[{backend}]")
    return out


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
