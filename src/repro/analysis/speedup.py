"""Sweep drivers: run workloads under paired configurations.

These helpers own the repetitive part of every experiment: build a
fresh environment per configuration, run, validate, and collect the
headline numbers (total cycles + fence-stall split) that the paper's
figures are made of.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..isa.instructions import FenceKind
from ..runtime.lang import Env
from ..sim.config import SimConfig
from ..sim.simulator import SimResult


@dataclass
class RunPoint:
    """One (configuration, workload) measurement."""

    label: str
    cycles: int
    fence_stall_cycles: int
    fence_stall_fraction: float
    stats_summary: dict = field(default_factory=dict)

    @property
    def others_fraction(self) -> float:
        return 1.0 - self.fence_stall_fraction


def ratio(numerator, denominator) -> float | None:
    """Speedup ``numerator / denominator`` that survives bad cells.

    Returns ``None`` when either side is missing (a dropped or failed
    campaign cell) or the denominator is zero (a degenerate zero-cycle
    baseline), so table assembly can print ``n/a`` instead of dividing
    by zero deep inside a sweep.
    """
    if numerator is None or denominator is None or not denominator:
        return None
    return numerator / denominator


def measure(
    build: Callable[[Env], object],
    config: SimConfig,
    label: str = "",
    check: bool = True,
    max_cycles: int | None = None,
) -> RunPoint:
    """Build the workload in a fresh env under ``config``, run, validate.

    ``build`` receives the env and returns an object with ``program``
    and (optionally) ``check``/``check()``.
    """
    env = Env(config)
    instance = build(env)
    result: SimResult = env.run(instance.program, max_cycles=max_cycles)
    if check and hasattr(instance, "check"):
        instance.check()
    return RunPoint(
        label=label,
        cycles=result.cycles,
        fence_stall_cycles=result.stats.fence_stall_cycles,
        fence_stall_fraction=result.stats.fence_stall_fraction,
        stats_summary=result.stats.summary(),
    )


def traditional_vs_scoped(
    build: Callable[[Env, FenceKind], object],
    scoped_kind: FenceKind,
    config: SimConfig | None = None,
    **measure_kwargs,
) -> tuple[RunPoint, RunPoint, float]:
    """Run a workload with traditional fences and with S-Fences.

    ``build(env, scope)`` constructs the workload with the given fence
    scope; GLOBAL is the traditional baseline.  Returns
    ``(trad, scoped, speedup)``.
    """
    cfg = config if config is not None else SimConfig()
    trad = measure(
        lambda env: build(env, FenceKind.GLOBAL), cfg, label="T", **measure_kwargs
    )
    scoped = measure(
        lambda env: build(env, scoped_kind), cfg, label="S", **measure_kwargs
    )
    return trad, scoped, trad.cycles / scoped.cycles


def normalized_series(points: list[RunPoint], baseline: RunPoint) -> list[dict]:
    """Figure 13-16 style rows: times normalized to the baseline run."""
    rows = []
    for p in points:
        norm = p.cycles / baseline.cycles if baseline.cycles else 0.0
        rows.append(
            {
                "label": p.label,
                "normalized_time": round(norm, 3),
                "fence_stalls": round(norm * p.fence_stall_fraction, 3),
                "others": round(norm * p.others_fraction, 3),
            }
        )
    return rows
