"""Experiment drivers and paper-style reporting."""

from .report import (
    ascii_series,
    format_table,
    paper_vs_measured,
    speedup_row,
    stacked_bar_rows,
)
from .speedup import RunPoint, measure, normalized_series, traditional_vs_scoped

__all__ = [
    "RunPoint",
    "ascii_series",
    "format_table",
    "measure",
    "normalized_series",
    "paper_vs_measured",
    "speedup_row",
    "stacked_bar_rows",
    "traditional_vs_scoped",
]
