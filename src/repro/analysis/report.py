"""Paper-style ASCII reporting: measured numbers next to paper values.

Every benchmark target regenerates one table or figure of the paper;
these helpers print them uniformly so EXPERIMENTS.md and the bench
output read the same way.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def paper_vs_measured(
    title: str,
    rows: Iterable[tuple[str, object, object]],
    paper_label: str = "paper",
    measured_label: str = "measured",
) -> str:
    """Three-column comparison table."""
    return format_table(
        ["metric", paper_label, measured_label],
        [(name, paper, measured) for name, paper, measured in rows],
        title=title,
    )


def speedup_row(name: str, trad_cycles: int, scoped_cycles: int) -> tuple[str, str, str]:
    return (
        name,
        str(trad_cycles),
        f"{scoped_cycles} ({trad_cycles / scoped_cycles:.3f}x)",
    )


def stacked_bar_rows(series: list[dict]) -> list[tuple[str, str, str, str]]:
    """Rows for a Figure 13-16 style stacked normalized-time chart."""
    return [
        (
            s["label"],
            f"{s['normalized_time']:.3f}",
            f"{s['fence_stalls']:.3f}",
            f"{s['others']:.3f}",
        )
        for s in series
    ]


def progress_line(
    done: int,
    total: int,
    ok: int = 0,
    failed: int = 0,
    cached: int = 0,
    width: int = 24,
) -> str:
    """One-line campaign progress bar: ``[#####...] 12/40 ok=10 ...``."""
    filled = int(round(width * min(done, total) / total)) if total else 0
    bar = "#" * filled + "." * (width - filled)
    return (f"[{bar}] {done}/{total} ok={ok} failed={failed} cached={cached}")


class StreamAggregator:
    """Aggregate campaign job outcomes as they stream in.

    The campaign engine completes jobs out of submission order (cache
    hits first, then whichever worker finishes); this accumulator keeps
    the running counts a progress display needs without waiting for the
    full result list.  It also tracks live throughput: ``jobs_per_s()``
    is the rate since construction, ``eta_s()`` extrapolates it over
    the jobs still pending, and ``line()`` appends both to the progress
    bar once at least one job has landed.  ``clock`` is injectable
    (defaults to :func:`time.monotonic`) so the arithmetic is testable
    without sleeping.

    Degenerate sweeps are first-class: before any job lands, or on a
    clock that has not advanced (an all-cached sweep can finish inside
    one timer tick), the rate and ETA are ``None`` and :meth:`line`
    simply omits them -- never a division by zero, never a nonsensical
    ``inf job/s``.  Out-of-band events (retries, pool downgrades) are
    collected via :meth:`note` and appended to :meth:`summary`, so
    degraded execution is visible in the one line operators read.
    """

    def __init__(self, total: int, clock=None) -> None:
        self.total = total
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self.failures: list[str] = []
        self.notes: list[str] = []
        self._clock = time.monotonic if clock is None else clock
        self._start = self._clock()

    def add(self, ok: bool, cached: bool = False, label: str = "") -> None:
        self.done += 1
        if ok:
            self.ok += 1
        else:
            self.failed += 1
            if label:
                self.failures.append(label)
        if cached:
            self.cached += 1

    def note(self, message: str) -> None:
        """Record an out-of-band event (retry, downgrade, fallback)."""
        self.notes.append(message)

    def jobs_per_s(self) -> float | None:
        """Completed jobs per wall-clock second, or None when undefined.

        Undefined before the first job lands, while the clock has not
        advanced, or if the rate is non-finite -- callers get ``None``
        rather than ``ZeroDivisionError`` or ``inf``.
        """
        elapsed = self._clock() - self._start
        if self.done <= 0 or elapsed <= 0:
            return None
        rate = self.done / elapsed
        return rate if math.isfinite(rate) and rate > 0 else None

    def eta_s(self) -> float | None:
        """Projected seconds until the last job lands, or None.

        Exactly 0.0 once everything is done (an all-cached sweep never
        reports a phantom wait), and never negative.
        """
        if self.done >= self.total:
            return 0.0
        rate = self.jobs_per_s()
        if rate is None:
            return None
        return max(0.0, self.total - self.done) / rate

    def line(self, width: int = 24) -> str:
        out = progress_line(self.done, self.total, self.ok, self.failed,
                            self.cached, width=width)
        rate = self.jobs_per_s()
        eta_s = self.eta_s()
        if rate is not None and eta_s is not None:
            eta = int(round(eta_s))
            out += f" {rate:.1f} job/s eta {eta // 60}:{eta % 60:02d}"
        return out

    def summary(self) -> str:
        out = (f"{self.done}/{self.total} job(s): {self.ok} ok, "
               f"{self.failed} failed, {self.cached} from cache")
        if self.failures:
            out += " -- failed: " + ", ".join(self.failures[:10])
            if len(self.failures) > 10:
                out += f" (+{len(self.failures) - 10} more)"
        if self.notes:
            out += f" -- {len(self.notes)} event(s): " + "; ".join(self.notes[:5])
            if len(self.notes) > 5:
                out += f" (+{len(self.notes) - 5} more)"
        return out


def failure_counts(rows: Iterable[tuple[str, bool]]) -> dict[str, int]:
    """Per-group failure tally from ``(group, ok)`` pairs.

    Every group seen appears in the result -- including groups with
    zero failures -- so a truncated sweep still reports the full
    scenario list it covered rather than silently narrowing it.
    """
    counts: dict[str, int] = {}
    for group, ok in rows:
        counts.setdefault(group, 0)
        if not ok:
            counts[group] += 1
    return counts


def render_failure_counts(counts: dict[str, int]) -> str:
    return " ".join(f"{group}={n}" for group, n in counts.items())


def ascii_series(values: Sequence[float], width: int = 40, label_fmt: str = "{:.3f}") -> list[str]:
    """Tiny horizontal bar chart (one line per value)."""
    if not values:
        return []
    peak = max(values) or 1.0
    lines = []
    for v in values:
        bar = "#" * max(1, int(round(width * v / peak)))
        lines.append(f"{label_fmt.format(v):>8} |{bar}")
    return lines
