"""Campaign-throughput harness: persistent pool vs legacy fork-per-job.

The PR-3 fast path made single simulations cheap enough that process
spawn + module warm-up dominated sweep wall-clock, which is what the
persistent worker pool exists to remove.  This module is the regression
guard for that property: it races the two pool implementations over the
same job sets and fails if the persistent pool stops beating the legacy
one.

For each sweep (the combined litmus corpus + verify matrix, and a
truncated chaos sweep) and each pool flavour it times:

* **cold** -- a fresh result cache, every job executes; the headline
  jobs/sec number and the gated legacy/persistent wall-clock ratio.
* **warm** -- an immediate re-run against the cache the cold run
  populated; the contract is *zero* executions, enforced here (a warm
  run that simulates anything fails the report).

Outcome fingerprints (a SHA-256 over the canonical JSON of every job's
status + payload, in submission order) are cross-checked between the
two pools: a throughput win that changed any number is a correctness
bug, not a speedup, and flips ``ok``.

``python -m repro perf --campaign`` drives this module and writes
``BENCH_campaign.json``; ``--smoke`` shrinks the sweeps for CI.

Honesty note: the wall-clock ratio is hardware-dependent.  On a
multi-core host the persistent pool additionally wins from real
parallel fan-out; on a single-CPU container (``cpus`` is recorded in
the report) both pools serialise on the one core and the ratio reduces
to pure per-process overhead -- fork, module COW traffic, per-job GC --
so the gate default is set to what a 1-CPU box reliably clears, not to
the multi-core headline.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time

#: sweep whose cold legacy/persistent ratio the CI gate applies to
GATE_SWEEP = "litmus+verify"

#: minimum cold-sweep speedup of the persistent pool over fork-per-job.
#: Conservative: chosen so a noisy single-CPU CI runner (where only
#: per-process overhead is recoverable) still clears it; multi-core
#: hosts measure far above it.
DEFAULT_MIN_RATIO = 1.1

REPORT_PATH = "BENCH_campaign.json"


def _sweep_jobs(smoke: bool) -> dict[str, list]:
    """The timed job sets, smallest-first so failures surface fast."""
    from ..campaign.jobs import chaos_jobs, litmus_jobs, verify_jobs

    if smoke:
        verify = verify_jobs(engines=["event"], modes=["orig", "full"],
                             smoke=True)
        chaos = chaos_jobs(algos=["wsq", "treiber"],
                           scenarios=["latency", "scope"], n_seeds=1)
    else:
        verify = verify_jobs()
        chaos = chaos_jobs(scenarios=["latency", "branch", "scope"], n_seeds=2)
    return {
        GATE_SWEEP: litmus_jobs() + verify,
        "chaos-smoke": chaos,
    }


def outcome_fingerprint(campaign) -> str:
    """SHA-256 over every outcome's status + payload, submission order.

    Cache-service flags and error tracebacks are excluded -- they
    describe *how* a job ran, not what it computed -- so the same
    digest must come out of any pool at any worker count, cold or warm.
    """
    digest = hashlib.sha256()
    for outcome in campaign.outcomes:
        digest.update(json.dumps(
            [outcome.status, outcome.result],
            sort_keys=True, separators=(",", ":"),
        ).encode())
        digest.update(b"\0")
    return digest.hexdigest()


def _timed_run(jobs, parallel: int, fork_per_job: bool, cache_dir: str):
    from ..campaign.cache import ResultCache
    from ..campaign.engine import run_campaign

    cache = ResultCache(cache_dir)
    t0 = time.perf_counter()
    campaign = run_campaign(jobs, parallel=parallel, cache=cache,
                            fork_per_job=fork_per_job)
    wall = time.perf_counter() - t0
    return wall, campaign


def run_campaign_perf(
    parallel: int | None = None,
    smoke: bool = False,
    min_ratio: float | None = DEFAULT_MIN_RATIO,
    progress=None,
) -> dict:
    """Race the two pools over every sweep; return the JSON-ready report.

    ``ok`` is False if any sweep's fingerprints differ between pools,
    if any warm re-run executed a job, or if the :data:`GATE_SWEEP`
    cold ratio falls below ``min_ratio``.
    """
    from ..campaign.engine import auto_parallel

    if parallel is None:
        parallel = auto_parallel()
    report: dict = {
        "smoke": smoke,
        "parallel": parallel,
        "cpus": os.cpu_count(),
        "sweeps": {},
        "ok": True,
    }
    flavours = (("legacy", True), ("persistent", False))
    for sweep_name, jobs in _sweep_jobs(smoke).items():
        entry: dict = {"jobs": len(jobs)}
        fingerprints = {}
        for flavour, fork_per_job in flavours:
            with tempfile.TemporaryDirectory(prefix="campthru-") as tmp:
                if progress is not None:
                    progress(f"[campaign-perf] {sweep_name}: {flavour} pool, "
                             f"cold ({len(jobs)} jobs x {parallel} workers)...")
                cold_wall, cold = _timed_run(jobs, parallel, fork_per_job, tmp)
                warm_wall, warm = _timed_run(jobs, parallel, fork_per_job, tmp)
                fingerprints[flavour] = {
                    "cold": outcome_fingerprint(cold),
                    "warm": outcome_fingerprint(warm),
                }
                entry[flavour] = {
                    "cold_s": round(cold_wall, 4),
                    "warm_s": round(warm_wall, 4),
                    "cold_jobs_per_s": round(len(jobs) / cold_wall, 2)
                    if cold_wall else None,
                    "failures": len(cold.failures),
                    "warm_executed": warm.executed,
                }
                if warm.executed:
                    report["ok"] = False
                if progress is not None:
                    progress(f"[campaign-perf] {sweep_name}: {flavour} "
                             f"cold {cold_wall:.2f}s "
                             f"({len(jobs) / cold_wall:.1f} job/s), "
                             f"warm {warm_wall:.2f}s "
                             f"({warm.executed} executed)")
        identical = (
            len({fp["cold"] for fp in fingerprints.values()}) == 1
            and len({fp["warm"] for fp in fingerprints.values()}) == 1
            and fingerprints["legacy"]["cold"] == fingerprints["legacy"]["warm"]
        )
        entry["fingerprint"] = fingerprints["persistent"]["cold"]
        entry["identical"] = identical
        if not identical:
            report["ok"] = False
            if progress is not None:
                progress(f"[campaign-perf] {sweep_name}: "
                         f"** OUTCOMES DIVERGED ** {fingerprints}")
        persistent_cold = entry["persistent"]["cold_s"]
        entry["ratio"] = (
            round(entry["legacy"]["cold_s"] / persistent_cold, 2)
            if persistent_cold else None
        )
        report["sweeps"][sweep_name] = entry

    if min_ratio is not None:
        gate_entry = report["sweeps"].get(GATE_SWEEP)
        ratio = gate_entry["ratio"] if gate_entry else None
        report["gate"] = {
            "sweep": GATE_SWEEP,
            "min_ratio": min_ratio,
            "ratio": ratio,
            "passed": bool(ratio is not None and ratio >= min_ratio),
        }
        if not report["gate"]["passed"]:
            report["ok"] = False
    return report


def write_report(report: dict, path: str = REPORT_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
