"""Cheapest-first lattice search with two-oracle acceptance.

The synthesizer answers: *which mode at which site forbids every bad
outcome for the fewest simulated stall cycles?*  The pieces:

* **Spec.**  The bad outcomes are the register tuples satisfying the
  test's ``exists`` clause within the fence-free allowed set (or an
  explicit forbidden set, for callers that derive one differentially).
  Since every placement's allowed set is a subset of the fence-free
  one, that universe is exhaustive.
* **Acceptance.**  A candidate placement is *sound* only when two
  independently implemented oracles both prove its allowed-outcome set
  excludes every bad outcome: the sleep-set DPOR explorer
  (:func:`repro.verify.explorer.explore_allowed_outcomes`) and the
  axiomatic permutation enumerator
  (:func:`repro.core.semantics.reference_allowed_outcomes`).  The two
  must also agree exactly; a disagreement aborts synthesis as an
  oracle bug rather than silently trusting either.
* **Search.**  Candidates are scanned in increasing order of summed
  per-site solo stall estimates (weaker modes first on ties), seeded
  with the measured all-full placement as the initial upper bound.
  Two prunes apply: an assignment abstractly dominated by a known
  unsound one is skipped without consulting the oracles (weakening
  can only grow the allowed set), and the scan stops at the first
  candidate whose estimate reaches the best measured stall.
* **Minimality.**  From the best candidate the search descends through
  one-step-weakened neighbours (``full -> sfence-class -> sfence-set
  -> none`` per site) while any sound neighbour measures strictly
  cheaper, so the returned placement has no sound strictly-cheaper
  neighbour -- the property the seeded minimality fuzzer re-checks in
  tier-1.

Every rejected candidate records *which* bad outcome it still admits,
through the same :func:`repro.litmus.dsl.outcomes_matching` code path
that names litmus mismatch tuples, so synthesis counterexample logs
read exactly like the rest of the repo's failure messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

from ..core.semantics import reference_allowed_outcomes
from ..litmus.dsl import LitmusTest, abstract_threads, outcomes_matching
from ..verify.explorer import explore_allowed_outcomes
from .cost import PROBE_OFFSETS, placement_cycles, site_estimates
from .sites import (
    MODES,
    FenceSite,
    abstract_signature,
    apply_placement,
    dominated_by,
    fence_sites,
    strip_test,
    weakened_neighbors,
)

#: at most this many counterexamples are retained per synthesis
COUNTEREXAMPLE_CAP = 16


class SynthesisError(RuntimeError):
    """The lattice cannot enforce the spec, or the oracles disagree."""


@dataclass
class SynthesisResult:
    """One synthesized placement plus the evidence behind it."""

    name: str
    sites: list[FenceSite]
    registers: list[str]
    modes: tuple[str, ...]            # the mode lattice searched
    offsets: list[int]                # cost-probe grid
    assignment: tuple[str, ...]       # chosen mode per site
    forbidden: list[tuple]            # the bad outcomes (spec)
    baseline_cycles: int              # fence-free sweep cycles
    cycles: int                       # chosen placement sweep cycles
    stall_cycles: int                 # cycles - baseline
    all_full_stall: int               # the all-full upper bound's stall
    estimates: dict[tuple[int, str], int]
    counterexamples: list[dict] = field(default_factory=list)
    candidates_total: int = 0
    candidates_checked: int = 0       # oracle consultations
    candidates_pruned: int = 0        # skipped via unsound dominance
    measured: int = 0                 # simulator cost measurements
    explorations: int = 0             # distinct oracle explorations
    descent_steps: int = 0            # local-minimality moves taken

    @property
    def fence_count(self) -> int:
        return sum(1 for mode in self.assignment if mode != "none")

    @property
    def mode_mix(self) -> dict[str, int]:
        """Non-none fence count per mode, in lattice order."""
        return {
            mode: n
            for mode in MODES
            if mode != "none"
            and (n := sum(1 for m in self.assignment if m == mode))
        }

    def placement(self) -> dict[str, str]:
        """Site label -> mode, the stable golden/report shape."""
        return {
            site.label: mode
            for site, mode in zip(self.sites, self.assignment)
        }


class _Oracles:
    """Memoised two-oracle allowed-set computation for one test."""

    def __init__(self, stripped: LitmusTest, sites: list[FenceSite]) -> None:
        self.stripped = stripped
        self.sites = sites
        self.explorations = 0
        self._memo: dict[tuple[str, ...], set[tuple]] = {}
        self.registers: list[str] = []

    def allowed(self, assignment: tuple[str, ...]) -> set[tuple]:
        """The agreed allowed set of one placement (both oracles)."""
        sig = abstract_signature(assignment)
        cached = self._memo.get(sig)
        if cached is not None:
            return cached
        variant = apply_placement(self.stripped, self.sites, assignment)
        threads = abstract_threads(variant)
        init = dict(variant.init)
        exploration = explore_allowed_outcomes(threads, init)
        reference = reference_allowed_outcomes(threads, init)
        if exploration.outcomes != reference:
            raise SynthesisError(
                f"{self.stripped.name}: oracle disagreement at placement "
                f"{assignment}: explorer-only "
                f"{sorted(exploration.outcomes - reference)}, reference-only "
                f"{sorted(reference - exploration.outcomes)}"
            )
        self.explorations += 1
        self.registers = exploration.registers
        self._memo[sig] = exploration.outcomes
        return exploration.outcomes


def synthesize(
    test: LitmusTest,
    modes: tuple[str, ...] = MODES,
    offsets: list[int] | None = None,
    forbidden: set[tuple] | None = None,
    max_measured: int = 128,
    on_progress=None,
    sites: list[FenceSite] | None = None,
    mem_backend: str = "mesi",
) -> SynthesisResult:
    """Synthesize the cheapest sound fence placement for ``test``.

    ``test`` may carry fences -- they are stripped first; the spec
    comes from its ``exists`` clause unless an explicit ``forbidden``
    outcome set is given.  ``modes`` restricts the per-site lattice
    (it must include at least one global-scope mode; a *reduced*
    lattice without ``none`` -- the whole-program path, where every
    kept slot must hold at least some fence -- searches strengths
    only, while the unfenced program still serves as the cost
    baseline).  ``sites`` restricts the insertion sites (default: the
    canonical enumeration over ``test``); the whole-program path
    passes delay-set-derived sites here.  ``on_progress`` (when given)
    is invoked after every simulator measurement -- campaign jobs feed
    their heartbeat through it.
    """
    offsets = list(PROBE_OFFSETS if offsets is None else offsets)
    for mode in modes:
        if mode not in MODES:
            raise KeyError(f"unknown fence mode {mode!r} (have {MODES})")
    strongest = [m for m in ("full", "sfence-class") if m in modes]
    if not strongest:
        raise SynthesisError(
            "the mode lattice must include a global-scope mode")

    stripped = strip_test(test)
    sites = fence_sites(stripped) if sites is None else list(sites)
    oracles = _Oracles(stripped, sites)
    none_assign = ("none",) * len(sites)
    allowed_none = oracles.allowed(none_assign)
    registers = oracles.registers

    if forbidden is None:
        bad = set(outcomes_matching(test.condition, registers, allowed_none))
    else:
        bad = set(forbidden) & allowed_none

    def measure(assignment: tuple[str, ...]) -> int:
        variant = apply_placement(stripped, sites, assignment)
        cycles = placement_cycles(variant, offsets, mem_backend)
        if on_progress is not None:
            on_progress()
        return cycles

    baseline_cycles = measure(none_assign)
    result = SynthesisResult(
        name=stripped.name, sites=sites, registers=registers,
        modes=tuple(modes), offsets=offsets, assignment=none_assign,
        forbidden=sorted(bad, key=str), baseline_cycles=baseline_cycles,
        cycles=baseline_cycles, stall_cycles=0, all_full_stall=0,
        estimates={},
    )
    if not bad:
        # nothing to forbid (CoWR-style coherence specs, or a fuzz
        # program whose fences never constrained anything): the empty
        # placement is sound and free
        result.candidates_total = 1
        result.explorations = oracles.explorations
        return result

    def admits(assignment: tuple[str, ...]) -> list[tuple]:
        """Bad outcomes this placement still allows (both oracles agree)."""
        allowed = oracles.allowed(assignment)
        if test.condition is not None and forbidden is None:
            # the shared exists-clause path, so counterexample tuples
            # match litmus mismatch messages exactly
            return [o for o in outcomes_matching(
                test.condition, registers, allowed) if o in bad]
        return sorted(allowed & bad, key=str)

    # the strongest corner is the search's soundness + cost upper bound
    full_assign = (strongest[0],) * len(sites)
    full_bad = admits(full_assign)
    if full_bad:
        raise SynthesisError(
            f"{stripped.name}: even the all-{strongest[0]} placement admits "
            f"bad outcome(s) {[tuple(o) for o in full_bad]} -- the site "
            f"lattice cannot enforce the spec"
        )
    result.estimates = site_estimates(
        stripped, sites, offsets, baseline_cycles, modes=tuple(modes),
        on_probe=on_progress, mem_backend=mem_backend,
    )
    best_assign = full_assign
    best_cycles = measure(full_assign)
    measured = len(sites) * (len(modes) - 1) + 2  # probes + baseline + full

    def estimate(assignment: tuple[str, ...]) -> int:
        return sum(result.estimates[(i, m)]
                   for i, m in enumerate(assignment))

    mode_rank = {mode: MODES.index(mode) for mode in modes}
    candidates = sorted(
        product(modes, repeat=len(sites)),
        key=lambda a: (estimate(a), tuple(mode_rank[m] for m in a)),
    )
    result.candidates_total = len(candidates)

    unsound_sigs: list[tuple[str, ...]] = []
    for assignment in candidates:
        if assignment == full_assign:
            continue
        if estimate(assignment) >= best_cycles - baseline_cycles:
            break  # estimates only grow from here; the bound is tight
        sig = abstract_signature(assignment)
        if any(dominated_by(sig, bad_sig) for bad_sig in unsound_sigs):
            result.candidates_pruned += 1
            continue
        result.candidates_checked += 1
        bad_here = admits(assignment)
        if bad_here:
            unsound_sigs = [s for s in unsound_sigs
                            if not dominated_by(s, sig)] + [sig]
            if len(result.counterexamples) < COUNTEREXAMPLE_CAP:
                result.counterexamples.append({
                    "placement": {
                        site.label: mode
                        for site, mode in zip(sites, assignment)
                        if mode != "none"
                    },
                    "admits": [list(o) for o in bad_here[:4]],
                })
            continue
        cycles = measure(assignment)
        measured += 1
        if cycles < best_cycles:
            best_assign, best_cycles = assignment, cycles
        if measured >= max_measured:
            break

    # local descent: weaken one site one step while it stays sound and
    # measures strictly cheaper -- the committed minimality property
    improved = True
    while improved:
        improved = False
        for _, neighbor in weakened_neighbors(best_assign):
            if any(m not in modes for m in neighbor):
                continue
            if admits(neighbor):
                continue
            cycles = measure(neighbor)
            measured += 1
            if cycles < best_cycles:
                best_assign, best_cycles = neighbor, cycles
                result.descent_steps += 1
                improved = True
                break

    result.assignment = best_assign
    result.cycles = best_cycles
    result.stall_cycles = best_cycles - baseline_cycles
    result.all_full_stall = measure(full_assign) - baseline_cycles
    result.measured = measured
    result.explorations = oracles.explorations
    return result
