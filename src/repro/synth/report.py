"""Synthesized-vs-hand-written comparison: job driver and report.

:func:`run_synth_case` is the campaign ``synth`` job runner: it
synthesizes a placement for one corpus entry, evaluates the entry's
hand-written placement on the same simulator grid against the same
fence-free baseline, re-checks the hand placement against both
oracles, and returns one JSON-safe payload.  A case is ``ok`` when the
hand-written placement is itself sound and the synthesized one costs
no more simulated stall -- the acceptance bar the golden tests pin.

:func:`assemble_synth_report` folds campaign job outcomes into
``synth-report.json`` (deterministic: pure function of the job
payloads, so a warm cache re-run writes byte-identical output), and
the two ``format_*`` helpers render the CLI table and the gating
failure lines.
"""

from __future__ import annotations

import json

from ..analysis.report import format_table
from ..core.semantics import reference_allowed_outcomes
from ..litmus.dsl import LitmusTest, abstract_threads, parse_litmus, stmt_kind
from ..verify.explorer import explore_allowed_outcomes
from .corpus import synth_entry
from .cost import PROBE_OFFSETS, SMOKE_PROBE_OFFSETS, placement_cycles
from .search import SynthesisResult, synthesize
from .sites import MODE_STMT, MODES, effective_flags, strip_test

REPORT_PATH = "synth-report.json"

#: DSL fence statement -> lattice mode (hand-written census)
_STMT_MODE = {stmt: mode for mode, stmt in MODE_STMT.items()}


def _mode_mix(modes_used: list[str]) -> dict[str, int]:
    """Fence count per mode, lattice-ordered, ``none`` elided."""
    mix = {}
    for mode in MODES:
        n = sum(1 for m in modes_used if m == mode)
        if n and mode != "none":
            mix[mode] = n
    # hand-written sources may use fences outside the lattice
    # (masked fence.ss/fence.ll); keep them visible, not dropped
    for m in modes_used:
        if m not in MODES:
            mix[m] = mix.get(m, 0) + 1
    return mix


def _hand_fences(hand: LitmusTest) -> list[dict]:
    """Every fence of the hand-written source, with its anchor.

    ``after`` is the statement the fence follows (``"^"`` for a fence
    leading its thread) -- same shape as synthesized placement labels,
    so the two columns of the report diff naturally.
    """
    fences = []
    for t, stmts in enumerate(hand.threads):
        prev = "^"
        for stmt in stmts:
            if stmt_kind(stmt) == "fence":
                fences.append({
                    "thread": t,
                    "after": f"T{t}:{prev}",
                    "mode": _STMT_MODE.get(stmt, stmt),
                })
            else:
                prev = stmt
    return fences


def evaluate_handwritten(
    hand: LitmusTest,
    forbidden: list[tuple],
    offsets: list[int],
    on_progress=None,
    mem_backend: str = "mesi",
) -> dict:
    """Measure and oracle-check one hand-written placement.

    Runs under the same effective flag set and offset grid as the
    synthesis lattice, with stall measured against the same stripped
    baseline, so the hand and synthesized columns are comparable
    cycle-for-cycle.
    """
    normalized = LitmusTest(hand.name, [list(s) for s in hand.threads],
                            dict(hand.init), effective_flags(hand),
                            hand.condition)
    baseline = strip_test(normalized)
    baseline_cycles = placement_cycles(baseline, offsets, mem_backend)
    cycles = placement_cycles(normalized, offsets, mem_backend)
    if on_progress is not None:
        on_progress()

    threads = abstract_threads(normalized)
    init = dict(normalized.init)
    exploration = explore_allowed_outcomes(threads, init)
    reference = reference_allowed_outcomes(threads, init)
    bad = {tuple(o) for o in forbidden}
    admits = sorted(
        {tuple(o) for o in exploration.outcomes | reference} & bad, key=str)
    fences = _hand_fences(normalized)
    return {
        "fences": fences,
        "fence_count": len(fences),
        "mode_mix": _mode_mix([f["mode"] for f in fences]),
        "cycles": cycles,
        "stall_cycles": cycles - baseline_cycles,
        "sound": not admits,
        "oracles_agree": exploration.outcomes == reference,
        "admits": [list(o) for o in admits],
    }


def _result_payload(result: SynthesisResult) -> dict:
    return {
        "placement": result.placement(),
        "assignment": list(result.assignment),
        "fence_count": result.fence_count,
        "mode_mix": result.mode_mix,
        "cycles": result.cycles,
        "stall_cycles": result.stall_cycles,
        "sound": True,  # synthesize() only returns two-oracle-proven placements
        "counterexamples": result.counterexamples,
        "search": {
            "candidates_total": result.candidates_total,
            "candidates_checked": result.candidates_checked,
            "candidates_pruned": result.candidates_pruned,
            "measured": result.measured,
            "explorations": result.explorations,
            "descent_steps": result.descent_steps,
        },
        "estimates": [
            [i, mode, stall]
            for (i, mode), stall in sorted(result.estimates.items())
            if mode != "none"
        ],
    }


def run_synth_case(params: dict, on_progress=None) -> dict:
    """Run one ``synth`` job: synthesize, then compare hand-written."""
    entry = synth_entry(params["name"])
    modes = tuple(params.get("modes") or MODES)
    offsets = list(params.get("offsets") or (
        SMOKE_PROBE_OFFSETS if params.get("smoke") else PROBE_OFFSETS))

    test = parse_litmus(entry.source)
    mem_backend = params.get("mem_backend", "mesi")
    result = synthesize(test, modes=modes, offsets=offsets,
                        on_progress=on_progress, mem_backend=mem_backend)
    hand = evaluate_handwritten(
        parse_litmus(entry.handwritten), result.forbidden, offsets,
        on_progress=on_progress, mem_backend=mem_backend,
    )
    synthesized = _result_payload(result)
    return {
        "name": entry.name,
        "note": entry.note,
        "modes": list(modes),
        "offsets": offsets,
        "registers": list(result.registers),
        "sites": [site.label for site in result.sites],
        "forbidden": [list(o) for o in result.forbidden],
        "baseline_cycles": result.baseline_cycles,
        "all_full_stall": result.all_full_stall,
        "synthesized": synthesized,
        "handwritten": hand,
        "stall_savings": hand["stall_cycles"] - result.stall_cycles,
        "fence_savings": hand["fence_count"] - result.fence_count,
        # the committed acceptance bar: the hand placement must itself
        # be sound, and synthesis must never cost more stall than it
        "ok": hand["sound"] and result.stall_cycles <= hand["stall_cycles"],
    }


# ------------------------------------------------------------------ the report
def assemble_synth_report(outcomes, smoke: bool = False) -> dict:
    """Fold campaign ``synth`` job outcomes into the synth report.

    ``outcomes`` is the submission-ordered
    :class:`~repro.campaign.engine.JobOutcome` list.  The report is
    ``ok`` iff every job ran, every hand-written placement proved
    sound, and no synthesized placement cost more stall than its
    hand-written counterpart.
    """
    cases: dict[str, dict] = {}
    engine_failures = []
    regressions = []
    for outcome in outcomes:
        p = outcome.job.params
        if not outcome.ok:
            engine_failures.append({
                "name": p["name"], "status": outcome.status,
                "error": outcome.error,
            })
            continue
        r = outcome.result
        cases[r["name"]] = r
        if not r["ok"]:
            regressions.append({
                "name": r["name"],
                "hand_sound": r["handwritten"]["sound"],
                "hand_admits": r["handwritten"]["admits"],
                "synth_stall": r["synthesized"]["stall_cycles"],
                "hand_stall": r["handwritten"]["stall_cycles"],
            })
    totals = {
        "synth_fences": sum(
            c["synthesized"]["fence_count"] for c in cases.values()),
        "hand_fences": sum(
            c["handwritten"]["fence_count"] for c in cases.values()),
        "synth_stall": sum(
            c["synthesized"]["stall_cycles"] for c in cases.values()),
        "hand_stall": sum(
            c["handwritten"]["stall_cycles"] for c in cases.values()),
        "explorations": sum(
            c["synthesized"]["search"]["explorations"] for c in cases.values()),
        "measured": sum(
            c["synthesized"]["search"]["measured"] for c in cases.values()),
    }
    return {
        "smoke": smoke,
        "cases": cases,
        "totals": totals,
        "engine_failures": engine_failures,
        "regressions": regressions,
        "ok": not (engine_failures or regressions),
    }


def _mix_cell(mix: dict[str, int]) -> str:
    return "+".join(f"{mode}:{n}" for mode, n in mix.items()) or "-"


def format_synth_report(report: dict) -> str:
    """The synthesized-vs-hand-written table, one row per corpus entry."""
    rows = []
    for name, c in report["cases"].items():
        s, h = c["synthesized"], c["handwritten"]
        rows.append((
            name,
            len(c["sites"]),
            f"{h['fence_count']} -> {s['fence_count']}",
            f"{_mix_cell(h['mode_mix'])} -> {_mix_cell(s['mode_mix'])}",
            f"{h['stall_cycles']} -> {s['stall_cycles']}",
            c["all_full_stall"],
            f"{s['search']['candidates_checked']}"
            f"/{s['search']['candidates_pruned']}"
            f"/{s['search']['candidates_total']}",
        ))
    t = report["totals"]
    rows.append((
        "TOTAL", "",
        f"{t['hand_fences']} -> {t['synth_fences']}", "",
        f"{t['hand_stall']} -> {t['synth_stall']}", "",
        "",
    ))
    title = "fence synthesis -- hand-written vs synthesized placements"
    if report["smoke"]:
        title += " (smoke)"
    return format_table(
        ["test", "sites", "fences h->s", "mode mix h->s",
         "stall cycles h->s", "all-full stall", "cands chk/pruned/total"],
        rows, title=title,
    )


def format_synth_failures(report: dict) -> list[str]:
    """Human-readable lines for everything that gates the exit status."""
    lines = []
    for r in report["regressions"]:
        if not r["hand_sound"]:
            tuples = ", ".join(str(tuple(o)) for o in r["hand_admits"])
            lines.append(
                f"HAND-WRITTEN UNSOUND {r['name']}: the corpus hand "
                f"placement admits forbidden outcome(s): {tuples}"
            )
        else:
            lines.append(
                f"COST REGRESSION {r['name']}: synthesized placement stalls "
                f"{r['synth_stall']} cycles vs hand-written "
                f"{r['hand_stall']} -- synthesis must never cost more"
            )
    for f in report["engine_failures"]:
        lines.append(
            f"ENGINE FAILURE synth:{f['name']}: {f['status']}\n{f['error']}"
        )
    return lines


def write_synth_report(report: dict, path: str = REPORT_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------- whole-program report
APP_REPORT_PATH = "app-synth-report.json"


def assemble_app_synth_report(outcomes, smoke: bool = False) -> dict:
    """Fold campaign ``app-synth`` job outcomes into the apps report.

    Deterministic for the same reason as :func:`assemble_synth_report`;
    the report is ``ok`` iff every job ran, every placement was proven
    sound by its designated oracle, no app synthesized more fences than
    its hand-written placement, and the mutation battery killed every
    seeded mutant.
    """
    cases: dict[str, dict] = {}
    engine_failures = []
    rejections = []
    for outcome in outcomes:
        p = outcome.job.params
        if not outcome.ok:
            engine_failures.append({
                "name": p["name"], "status": outcome.status,
                "error": outcome.error,
            })
            continue
        r = outcome.result
        cases[r["app"]] = r
        if not r["ok"]:
            rejections.append({
                "name": r["app"],
                "oracle": r["oracle"],
                "sound": r["soundness"]["sound"],
                "hand_failures": r["soundness"]["hand"]["failures"],
                "synth_failures": r["soundness"]["synthesized"]["failures"],
                "fences": r["fences"],
                "survivors": sorted(
                    key for key, m in r["mutation"]["battery"].items()
                    if not m["killed"]),
            })
    totals = {
        "hand_fences": sum(c["fences"]["hand"] for c in cases.values()),
        "synth_fences": sum(
            c["fences"]["synthesized"] for c in cases.values()),
        "mutants": sum(c["mutation"]["mutants"] for c in cases.values()),
        "killed": sum(c["mutation"]["killed"] for c in cases.values()),
        "oracle_runs": sum(
            c["soundness"]["hand"]["runs"]
            + c["soundness"]["synthesized"]["runs"]
            for c in cases.values()),
    }
    return {
        "smoke": smoke,
        "cases": cases,
        "totals": totals,
        "engine_failures": engine_failures,
        "rejections": rejections,
        "ok": not (engine_failures or rejections),
    }


def _stall_cell(cost: dict | None) -> str:
    if cost is None:
        return "-"
    hand = cost["hand_stall"] if cost["hand_stall"] is not None else "?"
    synth = cost["synth_stall"] if cost["synth_stall"] is not None else "?"
    return f"{hand} -> {synth}"


def format_app_synth_report(report: dict) -> str:
    """One row per app: oracle, fences, modes, stall, battery, confidence."""
    rows = []
    for name, c in report["cases"].items():
        synth_mix = _mode_mix(
            [m for m in c["synthesized"].values() if m != "none"])
        rows.append((
            name,
            c["oracle"],
            f"{c['fences']['hand']} -> {c['fences']['synthesized']}",
            _mix_cell(synth_mix),
            _stall_cell(c["cost"]),
            f"{c['mutation']['killed']}/{c['mutation']['mutants']}",
            f"{c['soundness']['confidence']:.4f}",
        ))
    t = report["totals"]
    rows.append((
        "TOTAL", "",
        f"{t['hand_fences']} -> {t['synth_fences']}", "", "",
        f"{t['killed']}/{t['mutants']}", "",
    ))
    title = "whole-program fence synthesis -- apps and algorithms"
    if report["smoke"]:
        title += " (smoke)"
    return format_table(
        ["app", "oracle", "fences h->s", "synth modes", "stall h->s",
         "mutants killed", "confidence"],
        rows, title=title,
    )


def format_app_synth_failures(report: dict) -> list[str]:
    """Gating failure lines, counterexamples named run by run."""
    lines = []
    for r in report["rejections"]:
        for f in r["hand_failures"]:
            lines.append(
                f"HAND-WRITTEN REJECTED {r['name']}: chaos oracle "
                f"counterexample scenario={f['scenario']} seed={f['seed']} "
                f"status={f['status']}: {f['detail']}"
            )
        for f in r["synth_failures"]:
            lines.append(
                f"SYNTHESIS REJECTED {r['name']}: chaos oracle "
                f"counterexample scenario={f['scenario']} seed={f['seed']} "
                f"status={f['status']}: {f['detail']}"
            )
        if r["survivors"]:
            lines.append(
                f"MUTATION SURVIVORS {r['name']}: the battery failed to "
                f"kill {', '.join(r['survivors'])} -- the oracle cannot "
                f"see the fences it is policing"
            )
        if r["fences"]["synthesized"] > r["fences"]["hand"]:
            lines.append(
                f"FENCE REGRESSION {r['name']}: synthesized "
                f"{r['fences']['synthesized']} fences vs hand-written "
                f"{r['fences']['hand']}"
            )
    for f in report["engine_failures"]:
        lines.append(
            f"ENGINE FAILURE app-synth:{f['name']}: {f['status']}\n{f['error']}"
        )
    return lines


def write_app_synth_report(report: dict, path: str = APP_REPORT_PATH) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
