"""Whole-program fence synthesis over ``apps/`` and ``algorithms/``.

The litmus-corpus synthesizer (:mod:`repro.synth.search`) enumerates
canonical sites of a seven-line DSL program and proves placements with
two exhaustive memory-model oracles.  Real programs are out of reach
for that recipe twice over: their site space is the delay-set
analysis' output, not a DSL enumeration, and their state space is far
beyond either exhaustive oracle.  This module closes both gaps:

* **Sites from delay-set analysis.**  Each app is concretely replayed
  at tiny scale (:func:`repro.apps.delay_set.record_program`), the
  Shasha-Snir graph of the recording is built, its critical cycles and
  delay pairs enumerated, and the app's *named fence slots* (the
  ``FencePlan`` labels the algorithms and apps now carry) classified
  live or dead by whether deleting them shrinks the statically
  enforced pattern set.  The mode lattice is searched per slot, not
  per textual site.
* **A soundness-oracle hierarchy.**  Distillable programs (the
  lock-free algorithms) have each critical-cycle *signature* distilled
  into a litmus-sized kernel that the existing DPOR + axiomatic oracle
  pair proves exactly, with the spec derived differentially (bad =
  allowed without fences, minus allowed under the hand-written
  placement).  Full-scale apps get the *chaos-campaign oracle*: N
  seeded fault-schedule runs through :func:`repro.chaos.runner.run_plan_case`
  with the :class:`~repro.chaos.invariants.DelayPairChecker` watching
  the delay-set ordering requirements, judged by rejection sampling
  with an explicit confidence figure calibrated against the mutation
  battery's observed kill rate.

Every synthesized placement must statically enforce the same
delay-pair pattern floor as the hand-written one; the chaos oracle
then polices the dynamic side.  A placement the static floor accepts
but a chaos run rejects is an *oracle disagreement* and aborts
synthesis rather than silently trusting either side, mirroring the
DPOR-vs-axiomatic agreement rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from ..algorithms.chase_lev import WorkStealingDeque
from ..algorithms.harris_set import HarrisSet
from ..algorithms.workloads import build_harris_workload, build_wsq_workload
from ..apps.barnes import build_barnes
from ..apps.delay_set import (
    ProgramSkeleton,
    RecordedFence,
    critical_cycles,
    cycle_components,
    enforced_patterns,
    record_program,
    required_patterns,
    skeleton_delay_pairs,
    skeleton_graph,
)
from ..apps.ptc import build_ptc
from ..apps.radiosity import build_radiosity
from ..chaos.runner import run_plan_case
from ..isa.instructions import FenceKind, WAIT_LOADS, WAIT_STORES
from ..isa.program import Program
from ..litmus.dsl import LitmusTest, abstract_threads
from ..core.semantics import reference_allowed_outcomes
from ..runtime.harness import FencePlan
from ..runtime.lang import Env
from ..sim.config import SimConfig
from ..verify.explorer import explore_allowed_outcomes
from .search import SynthesisError, synthesize
from .sites import MODE_STMT, MODES, FenceSite, strip_test

#: default chaos-oracle battery for validating a placement
CHAOS_SCENARIOS = ("drain", "latency")
CHAOS_SEEDS = (0, 1)
#: default battery for the anti-vacuity mutants (drain throttling keeps
#: stores buffered long enough that a deleted fence is near-certain to
#: let the DelayPairChecker observe the reordering)
MUTANT_SCENARIOS = ("drain",)
MUTANT_SEEDS = (0, 1)

#: mutant runs get a deliberately small budget and no escalation
#: ladder: a sound placement finishes its validation workload in a few
#: thousand cycles, while a broken mutant often *livelocks* the
#: algorithm outright (e.g. Harris search spinning on a never-published
#: node) -- with the default 600k-cycle budget times the x2 escalation
#: ladder that one kill would cost minutes of simulation.  Running out
#: of 20k cycles is itself unambiguous kill evidence at this scale.
MUTANT_BUDGET = 20_000
MUTANT_ESCALATIONS = 0

#: at most this many distinct cycle signatures are distilled per app;
#: more is an analysis explosion, and truncation is reported, never silent
KERNEL_CAP = 64

#: per-slot mode lattice of the whole-program search, weakest first.
#: ``none`` is only reachable for *dead* slots (no delay pair crosses
#: them); live slots search strengths only, so the static floor stays
#: intact by construction on the chaos path.
APP_LATTICE = ("sfence-set", "sfence-class", "full")


# ------------------------------------------------------------------ the corpus
@dataclass(frozen=True)
class AppEntry:
    """One whole-program synthesis target.

    ``record`` replays the app at tiny scale (always built at
    ``FenceKind.SET`` so the recorded flags match a set-scope runtime
    build); ``chaos_build``/``cost_build`` construct the real workload
    at small (fault-injected validation) and moderate (fault-free cost
    measurement) scale with an arbitrary :class:`FencePlan` swapped in.
    """

    name: str
    oracle: str                   # "dpor+axiomatic" | "chaos"
    hand_mode: str                # lattice mode of the shipped placement
    hand_scope: FenceKind         # scope the shipped build runs at
    schedule: str                 # replay schedule for record_program
    record: Callable[[], ProgramSkeleton]
    chaos_build: Callable[[Env, FencePlan, FenceKind, bool], object]
    cost_build: Callable[[Env, FencePlan, FenceKind], object]
    note: str = ""
    #: which fault scenarios expose *this* app's protocol when a fence
    #: is weakened.  Store-buffer drain throttling catches most corpus
    #: members; ptc's deque hand-off only comes apart under scope-fault
    #: injection, so its battery runs there.
    mutant_scenarios: tuple = MUTANT_SCENARIOS
    mutant_seeds: tuple = MUTANT_SEEDS


def _record_chase_lev() -> ProgramSkeleton:
    env = Env(SimConfig())
    deque = WorkStealingDeque(env, capacity=8, scope=FenceKind.SET)

    def owner(tid: int):
        for task in (1, 2, 3):
            yield from deque.put(task)
        yield from deque.take()

    def thief(tid: int):
        yield from deque.steal()
        yield from deque.steal()

    return record_program(
        Program([owner, thief], name="chase-lev"), env.memory)


def _record_harris() -> ProgramSkeleton:
    env = Env(SimConfig())
    sset = HarrisSet(env, pool_size=16, scope=FenceKind.SET)

    def t0(tid: int):
        yield from sset.insert(3)
        yield from sset.insert(7)

    def t1(tid: int):
        yield from sset.insert(5)
        yield from sset.delete(3)
        yield from sset.contains(7)

    return record_program(Program([t0, t1], name="harris-list"), env.memory)


def _record_barnes() -> ProgramSkeleton:
    env = Env(SimConfig())
    inst = build_barnes(env, n_bodies=4, n_threads=2, scope=FenceKind.SET)
    return record_program(inst.program, env.memory)


def _record_ptc() -> ProgramSkeleton:
    env = Env(SimConfig())
    inst = build_ptc(env, n_vertices=6, avg_out_degree=1.5, n_threads=2,
                     scope=FenceKind.SET, compute_per_successor=0)
    return record_program(inst.program, env.memory, schedule="round-robin")


def _record_radiosity() -> ProgramSkeleton:
    # exchange_every=1 so the recording actually exercises the shared
    # exchange region: with the default cadence the two tasks per
    # thread at this scale never emit, the skeleton sees a single
    # conflicting base, and no distinct-base pattern can form
    env = Env(SimConfig())
    inst = build_radiosity(env, n_patches=4, interactions_per_patch=3,
                           rounds=2, n_threads=2, scope=FenceKind.SET,
                           exchange_every=1)
    return record_program(inst.program, env.memory)


APP_CORPUS: dict[str, AppEntry] = {
    e.name: e
    for e in (
        AppEntry(
            "chase-lev", "dpor+axiomatic", "sfence-class", FenceKind.CLASS,
            "sequential", _record_chase_lev,
            lambda env, plan, scope, br: build_wsq_workload(
                env, scope=scope, iterations=4, workload_level=1,
                n_threads=4, emit_branches=br, fence_plan=plan),
            lambda env, plan, scope: build_wsq_workload(
                env, scope=scope, iterations=8, workload_level=1,
                n_threads=4, fence_plan=plan),
            note="work-stealing deque; kernels distilled per cycle signature",
        ),
        AppEntry(
            "harris-list", "dpor+axiomatic", "sfence-class", FenceKind.CLASS,
            "sequential", _record_harris,
            lambda env, plan, scope, br: build_harris_workload(
                env, scope=scope, iterations=3, workload_level=1,
                n_threads=4, emit_branches=br, fence_plan=plan),
            lambda env, plan, scope: build_harris_workload(
                env, scope=scope, iterations=6, workload_level=1,
                n_threads=4, fence_plan=plan),
            note="lock-free list; load-ordering slot provable only by kernels",
        ),
        AppEntry(
            "barnes", "chaos", "sfence-set", FenceKind.SET,
            "sequential", _record_barnes,
            lambda env, plan, scope, br: build_barnes(
                env, n_bodies=12, n_threads=4, scope=scope, fence_plan=plan),
            lambda env, plan, scope: build_barnes(
                env, n_bodies=32, n_threads=4, scope=scope, fence_plan=plan),
            note="SPLASH-2 force step; full-scale, chaos-campaign oracle",
        ),
        AppEntry(
            "ptc", "chaos", "sfence-class", FenceKind.CLASS,
            "round-robin", _record_ptc,
            lambda env, plan, scope, br: build_ptc(
                env, n_vertices=10, avg_out_degree=1.8, n_threads=4,
                scope=scope, compute_per_successor=10, fence_plan=plan),
            lambda env, plan, scope: build_ptc(
                env, n_vertices=24, avg_out_degree=2.0, n_threads=4,
                scope=scope, compute_per_successor=20, fence_plan=plan),
            note="transitive closure over work-stealing deques",
            # drain throttling never breaks ptc's deque hand-off; the
            # latency-spike scenario at these seeds kills every mutant
            # (delete and weaken alike) while the hand build stays clean
            mutant_scenarios=("latency",),
            mutant_seeds=(4, 15),
        ),
        AppEntry(
            "radiosity", "chaos", "sfence-set", FenceKind.SET,
            "sequential", _record_radiosity,
            lambda env, plan, scope, br: build_radiosity(
                env, n_patches=8, interactions_per_patch=4, rounds=1,
                n_threads=4, scope=scope, exchange_every=1, fence_plan=plan),
            lambda env, plan, scope: build_radiosity(
                env, n_patches=24, interactions_per_patch=6, rounds=2,
                n_threads=4, scope=scope, exchange_every=1, fence_plan=plan),
            note="SPLASH-2 gather/publish rounds; chaos-campaign oracle",
        ),
    )
}


def app_names() -> list[str]:
    return list(APP_CORPUS)


def app_entry(name: str) -> AppEntry:
    try:
        return APP_CORPUS[name]
    except KeyError:
        raise KeyError(
            f"unknown app synth target {name!r} (have {sorted(APP_CORPUS)})"
        ) from None


# ------------------------------------------------------------------- analysis
@dataclass
class AppAnalysis:
    """The delay-set view of one recorded app."""

    skel: ProgramSkeleton
    cycles: list
    pairs: set
    components: int
    patterns: set                 # runtime-checkable requirements
    hand_enforced: set            # floor: what the hand placement enforces
    slots: dict[str, list[RecordedFence]]
    live: list[str]
    dead: list[str]


def analyze_app(entry: AppEntry) -> AppAnalysis:
    """Record, build the Shasha-Snir graph, classify the fence slots."""
    skel = entry.record()
    g = skeleton_graph(skel)
    cycles = critical_cycles(g, max_threads=2)
    pairs = skeleton_delay_pairs(g, cycles)
    patterns = required_patterns(skel, pairs)
    slots = skel.slots()
    hand = {s: entry.hand_mode for s in slots}
    hand_enforced = enforced_patterns(skel, patterns, modes=hand)
    live, dead = [], []
    for slot in sorted(slots):
        without = dict(hand)
        without[slot] = "none"
        if enforced_patterns(skel, patterns, modes=without) == hand_enforced:
            dead.append(slot)
        else:
            live.append(slot)
    return AppAnalysis(
        skel=skel, cycles=cycles, pairs=pairs,
        components=len(cycle_components(cycles)),
        patterns=patterns, hand_enforced=hand_enforced,
        slots=slots, live=live, dead=dead,
    )


# ------------------------------------------------- kernel path (dpor oracle)
def _clean(base: str) -> str:
    return re.sub(r"\W+", "_", base)


def _slots_between(skel: ProgramSkeleton, entry_key, exit_key) -> tuple:
    """Named fence slots strictly between two same-thread accesses."""
    t = entry_key[0]
    names, seen = [], set()
    for f in sorted(skel.thread_fences(t), key=lambda f: f.after):
        if f.name and f.covers(entry_key[1], exit_key[1]):
            if f.name not in seen:
                seen.add(f.name)
                names.append(f.name)
    return tuple(names)


def _cycle_signature(skel: ProgramSkeleton, cycle) -> tuple:
    """Rotation-canonical block shape of one critical cycle.

    A block is (entry, slot-names-between, exit-or-None) where each
    access is abstracted to ``(base, kind, op, flagged)``; cycles with
    the same signature distill to the same kernel.
    """
    blocks: list[list] = []
    for node in cycle:
        if blocks and blocks[-1][0][0] == node[0]:
            blocks[-1].append(node)
        else:
            blocks.append([node])

    def desc(key):
        a = skel.access(key)
        return (a.base, a.kind, a.op, a.flagged)

    sig = []
    for block in blocks:
        if len(block) == 1:
            sig.append((desc(block[0]), (), None))
        else:
            sig.append((desc(block[0]),
                        _slots_between(skel, block[0], block[-1]),
                        desc(block[-1])))
    rotations = [tuple(sig[i:] + sig[:i]) for i in range(len(sig))]
    return min(rotations, key=repr)


def _fence_stmt(mode: str, waits: int) -> str:
    stmt = MODE_STMT[mode]
    if waits == WAIT_STORES:
        return stmt + ".ss"
    if waits == WAIT_LOADS:
        return stmt + ".ll"
    return stmt


@dataclass
class Kernel:
    """One distilled critical-cycle kernel plus its differential spec."""

    name: str
    signature: tuple
    hand: LitmusTest              # with the hand-written fences rendered
    stripped: LitmusTest
    sites: list[FenceSite]
    site_slots: list[tuple]       # parallel to sites: slot names at the site
    forbidden: set                # allowed(stripped) - allowed(hand)
    slot_fences: dict             # slot -> exemplar RecordedFence


def _agreed_allowed(test: LitmusTest) -> set:
    """Both oracles' allowed set; disagreement aborts synthesis."""
    threads = abstract_threads(test)
    init = dict(test.init)
    exploration = explore_allowed_outcomes(threads, init)
    reference = reference_allowed_outcomes(threads, init)
    if exploration.outcomes != reference:
        raise SynthesisError(
            f"{test.name}: oracle disagreement: explorer-only "
            f"{sorted(exploration.outcomes - reference)}, reference-only "
            f"{sorted(reference - exploration.outcomes)}"
        )
    return exploration.outcomes


def _render_kernel(name: str, sig: tuple, slot_fences: dict,
                   hand_mode: str, drop_slot: str | None = None) -> LitmusTest:
    """The hand-fenced litmus rendering of one cycle signature.

    CAS accesses render as stores (the write is what a delay pair
    orders); store values are distinct and nonzero so outcomes
    discriminate; ``drop_slot`` omits one slot's fences (the kernel
    mutation check).
    """
    value = 0
    flagged: set[str] = set()
    threads: list[list[str]] = []
    for t, (entry, slots, exit_) in enumerate(sig):
        regs = 0
        stmts: list[str] = []

        def render(desc):
            nonlocal value, regs
            base, kind, _op, fl = desc
            var = _clean(base)
            if fl:
                flagged.add(var)
            if kind == "w":
                value += 1
                return f"{var} = {value}"
            reg = f"r{t}_{regs}"
            regs += 1
            return f"{reg} = {var}"

        stmts.append(render(entry))
        if exit_ is not None:
            for slot in slots:
                if slot == drop_slot:
                    continue
                f = slot_fences[slot]
                stmts.append(_fence_stmt(hand_mode, f.waits))
            stmts.append(render(exit_))
        threads.append(stmts)
    if not flagged:
        # a kernel with no flagged access must not inherit the
        # flag-everything fallback, or sfence-set would order it all
        flagged = {"__none__"}
    return LitmusTest(name, threads, {}, flagged, None)


def distill_kernels(entry: AppEntry, analysis: AppAnalysis,
                    cap: int = KERNEL_CAP) -> tuple[list[Kernel], int]:
    """One kernel per distinct critical-cycle signature.

    Returns ``(kernels, n_signatures)``; kernels whose differential
    spec is empty (the hand fences never constrained the cycle) are
    kept with ``forbidden == set()`` so callers can count vacuity.
    """
    skel = analysis.skel
    slot_fences = {s: fs[0] for s, fs in analysis.slots.items()}
    signatures: list[tuple] = []
    seen: set = set()
    for cycle in analysis.cycles:
        sig = _cycle_signature(skel, cycle)
        if sig not in seen:
            seen.add(sig)
            signatures.append(sig)
    truncated = len(signatures)
    signatures = sorted(signatures, key=repr)[:cap]

    kernels: list[Kernel] = []
    for k, sig in enumerate(signatures):
        name = f"{entry.name}-k{k}"
        hand = _render_kernel(name, sig, slot_fences, entry.hand_mode)
        stripped = strip_test(hand)
        sites: list[FenceSite] = []
        site_slots: list[tuple] = []
        for t, (_entry, slots, exit_) in enumerate(sig):
            if exit_ is not None and slots:
                sites.append(FenceSite(t, 0, ",".join(slots)))
                site_slots.append(slots)
        forbidden = _agreed_allowed(stripped) - _agreed_allowed(hand)
        kernels.append(Kernel(
            name=name, signature=sig, hand=hand, stripped=stripped,
            sites=sites, site_slots=site_slots, forbidden=forbidden,
            slot_fences=slot_fences,
        ))
    return kernels, truncated


_RANK = {m: i for i, m in enumerate(MODES)}


def synthesize_kernel_slots(entry: AppEntry, analysis: AppAnalysis,
                            kernels: list[Kernel],
                            on_progress=None) -> tuple[dict, dict]:
    """Per-slot modes: the strongest any kernel's synthesis demands.

    Every kernel is synthesized over the full lattice (``none``
    included -- the kernels, not the static floor, are the designated
    oracle here) with the slot-bearing block boundaries as the only
    sites; the per-site results are unioned per slot, strongest wins.
    Slots no constrained kernel touches fall to ``none``.
    """
    assignment = {slot: "none" for slot in analysis.slots}
    per_kernel: dict[str, dict] = {}
    for kernel in kernels:
        if not kernel.forbidden:
            per_kernel[kernel.name] = {"vacuous": True}
            continue
        result = synthesize(
            kernel.stripped, sites=kernel.sites, forbidden=kernel.forbidden,
            # the app-realizable lattice: a slot can hold a scoped fence
            # or nothing; ``full`` is the traditional-fence baseline the
            # apps exist to avoid, and abstractly sfence-class already
            # covers it
            modes=("none", "sfence-set", "sfence-class"),
            offsets=[0, 40], on_progress=on_progress,
        )
        per_kernel[kernel.name] = {
            "vacuous": False,
            "placement": result.placement(),
            "forbidden": len(kernel.forbidden),
        }
        for slots, mode in zip(kernel.site_slots, result.assignment):
            for slot in slots:
                if _RANK[mode] > _RANK[assignment[slot]]:
                    assignment[slot] = mode
    return assignment, per_kernel


def kernel_mutant_kills(entry: AppEntry, analysis: AppAnalysis,
                        kernels: list[Kernel]) -> dict:
    """Which hand-placement mutants the kernel oracle kills.

    Deleting slot ``s`` from every kernel's hand rendering must admit
    at least one differentially-forbidden outcome somewhere, or the
    battery is vacuous for that slot.
    """
    kills: dict[str, dict] = {}
    for slot in analysis.live:
        admitted = []
        for kernel in kernels:
            if not kernel.forbidden:
                continue
            if not any(slot in slots for slots in kernel.site_slots):
                continue
            mutant = _render_kernel(
                kernel.name, kernel.signature, kernel.slot_fences,
                entry.hand_mode, drop_slot=slot)
            bad = _agreed_allowed(mutant) & kernel.forbidden
            if bad:
                admitted.append(
                    {"kernel": kernel.name,
                     "admits": sorted([list(o) for o in bad])[:4]})
        kills[f"{slot}:delete"] = {
            "kind": "delete", "slot": slot,
            "killed": bool(admitted), "runs": 1,
            "kills": 1 if admitted else 0,
            "evidence": admitted[:2],
        }
    return kills


# -------------------------------------------------- chaos path (full apps)
def _static_floor_holds(analysis: AppAnalysis, assignment: dict) -> bool:
    """Does a slot->mode assignment still enforce the hand floor?"""
    held = enforced_patterns(analysis.skel, analysis.patterns,
                             modes=assignment)
    return held >= analysis.hand_enforced


WEAKER = {"full": "sfence-class", "sfence-class": "sfence-set"}


def weaken_slots(entry: AppEntry, analysis: AppAnalysis) -> dict:
    """Greedy static weakening: hand modes stepped down to a fixpoint.

    Dead slots drop to ``none`` one at a time -- a slot can be
    *individually* dead but jointly load-bearing (radiosity's ``flush``
    and the next round's ``gather`` are back-to-back and cover for each
    other), so every drop re-proves the floor on the cumulative
    assignment.  Surviving slots then weaken one lattice step at a time
    (``full -> sfence-class -> sfence-set``) while the statically
    enforced pattern set still covers the hand floor.  The result is
    the candidate the chaos-campaign oracle then validates.
    """
    assignment = {slot: entry.hand_mode for slot in analysis.slots}
    for slot in sorted(analysis.dead):
        trial = dict(assignment)
        trial[slot] = "none"
        if _static_floor_holds(analysis, trial):
            assignment = trial
    changed = True
    while changed:
        changed = False
        for slot in sorted(assignment):
            weaker = WEAKER.get(assignment[slot])
            if weaker is None:
                continue
            trial = dict(assignment)
            trial[slot] = weaker
            if _static_floor_holds(analysis, trial):
                assignment = trial
                changed = True
    return assignment


def plan_scope(entry: AppEntry, assignment: dict) -> FenceKind:
    """Set-scope builds are needed the moment any slot runs sfence-set."""
    if any(mode == "sfence-set" for mode in assignment.values()):
        return FenceKind.SET
    return entry.hand_scope


def chaos_validate(entry: AppEntry, plan: FencePlan, scope: FenceKind,
                   patterns: set, scenarios, seeds,
                   base_budget: int = 600_000, escalations: int = 3,
                   on_progress=None) -> dict:
    """N-run rejection sampling of one concrete placement.

    Every (scenario, seed) cell rebuilds the app from scratch with the
    plan swapped in, runs it under seeded fault injection with the
    ordering checker *and* the delay-pair checker watching, and judges
    the run by both checkers plus the workload's own invariants.
    """
    def builder(env, emit_branches):
        return entry.chaos_build(env, plan, scope, emit_branches)

    runs, failures = 0, []
    for scenario in scenarios:
        for seed in seeds:
            rep = run_plan_case(
                builder, scenario, seed, patterns=patterns,
                label=entry.name, base_budget=base_budget,
                escalations=escalations)
            runs += 1
            if on_progress is not None:
                on_progress()
            if not rep.ok:
                failures.append({
                    "scenario": scenario, "seed": seed,
                    "status": rep.status,
                    "detail": rep.detail.splitlines()[0] if rep.detail else "",
                })
    return {"runs": runs, "failures": failures, "ok": not failures}


def calibrate_patterns(entry: AppEntry, candidates: set, scenarios, seeds,
                       base_budget: int = 600_000,
                       on_progress=None) -> tuple[set, set]:
    """Differential monitor spec: drop patterns the *hand* build trips.

    The static ``hand_enforced`` set generalises from one recorded path
    per thread, but a chaos cell can drive the workload down paths the
    recording never took (failed steals, contention retries) where an
    accidentally-enforced pair has no fence between its accesses.  The
    hand placement is ground truth, so every pattern it dynamically
    reorders somewhere in the battery is calibrated out; what survives
    is the ordering contract the hand fences actually maintain -- the
    spec synthesized placements and mutants are then held to, the same
    differential move the kernel oracle makes with allowed-outcome
    sets.  Returns ``(monitored, discarded)``.
    """
    def builder(env, emit_branches):
        return entry.chaos_build(env, FencePlan.hand(), entry.hand_scope,
                                 emit_branches)

    violated: set = set()
    for scenario in scenarios:
        for seed in seeds:
            rep = run_plan_case(
                builder, scenario, seed, patterns=candidates,
                label=entry.name, base_budget=base_budget)
            violated.update(tuple(p) for p in rep.pair_violated)
            if on_progress is not None:
                on_progress()
    return candidates - violated, violated


def chaos_mutants(entry: AppEntry, analysis: AppAnalysis) -> list[dict]:
    """The anti-vacuity battery: one mutant per live hand fence.

    ``delete`` elides the slot; ``weaken`` steps a stronger-than-set
    slot down to ``sfence-set`` *while keeping the hand build's scope*,
    where nothing is flagged -- the fence still executes but orders
    nothing, the subtler way a placement rots.
    """
    mutants = []
    for slot in analysis.live:
        mutants.append({"slot": slot, "kind": "delete",
                        "modes": {slot: "none"}})
        if entry.hand_mode in WEAKER:
            mutants.append({"slot": slot, "kind": "weaken",
                            "modes": {slot: "sfence-set"}})
    return mutants


def run_mutation_battery(entry: AppEntry, analysis: AppAnalysis,
                         patterns: set, scenarios, seeds,
                         base_budget: int = MUTANT_BUDGET,
                         escalations: int = MUTANT_ESCALATIONS,
                         on_progress=None) -> dict:
    """Run every mutant through the chaos battery; count kills per run.

    ``patterns`` should be the *calibrated* monitor set so that a kill
    always names a reordering the hand build provably never commits.
    """
    results: dict[str, dict] = {}
    for mutant in chaos_mutants(entry, analysis):
        plan = FencePlan(mutant["modes"], default="hand")
        verdicts = chaos_validate(
            entry, plan, entry.hand_scope, patterns,
            scenarios, seeds, base_budget=base_budget,
            escalations=escalations, on_progress=on_progress)
        kills = len(verdicts["failures"])
        results[f"{mutant['slot']}:{mutant['kind']}"] = {
            "kind": mutant["kind"], "slot": mutant["slot"],
            "killed": kills > 0, "runs": verdicts["runs"], "kills": kills,
            "evidence": verdicts["failures"][:2],
        }
    return results


# --------------------------------------------------------------- cost + case
def measure_app_cycles(entry: AppEntry, plan: FencePlan, scope: FenceKind,
                       check: bool = True,
                       max_cycles: int = 100_000) -> int | None:
    """Fault-free cycle count of one placement at moderate scale.

    ``None`` when the run fails (the fence-free baseline may
    legitimately corrupt itself or never terminate -- that *is* the
    result; the paper's apps are incorrect without their fences).  The
    cap is ~14x the largest sound run in the corpus (~7k cycles), so
    hitting it means livelock, not slowness.
    """
    env = Env(SimConfig(n_cores=4))
    handle = entry.cost_build(env, plan, scope)
    try:
        res = env.run(handle.program, max_cycles=max_cycles)
        if check:
            handle.check()
    except (AssertionError, RuntimeError):
        return None
    return res.cycles


def _battery_stats(battery: dict) -> dict:
    mutants = len(battery)
    killed = sum(1 for m in battery.values() if m["killed"])
    rates = [m["kills"] / m["runs"] for m in battery.values() if m["runs"]]
    return {
        "mutants": mutants,
        "killed": killed,
        "kill_rate": round(killed / mutants, 6) if mutants else 1.0,
        "p_floor": round(min(rates), 6) if rates else 1.0,
    }


def _confidence(p_floor: float, runs: int) -> float:
    """Rejection-sampling confidence: P(>=1 kill in N runs) at the
    weakest observed per-run detection rate."""
    return round(1.0 - (1.0 - p_floor) ** runs, 6)


def run_app_synth_case(
    name: str,
    scenarios=CHAOS_SCENARIOS,
    seeds=CHAOS_SEEDS,
    mutant_scenarios=None,
    mutant_seeds=None,
    base_budget: int = 600_000,
    measure_costs: bool = True,
    on_progress=None,
) -> dict:
    """Synthesize + validate one app; returns the report payload.

    Deterministic end to end: the recording replay, the static
    analysis, the kernel oracles, the seeded chaos schedules and the
    fault-free cost runs all derive from fixed seeds, so the committed
    report reproduces byte-identically.
    """
    entry = app_entry(name)
    if mutant_scenarios is None:
        mutant_scenarios = entry.mutant_scenarios
    if mutant_seeds is None:
        mutant_seeds = entry.mutant_seeds
    analysis = analyze_app(entry)
    slots_payload = {
        slot: {
            "hand_mode": entry.hand_mode,
            "live": slot in analysis.live,
            "instances": len(fences),
        }
        for slot, fences in sorted(analysis.slots.items())
    }

    # the static delay-set floor is the baseline synthesis for every
    # app: dead slots dropped, live slots weakened to the cheapest mode
    # that still enforces everything the hand placement enforces
    assignment = weaken_slots(entry, analysis)

    kernel_payload = None
    kernel_kills: dict = {}
    if entry.oracle == "dpor+axiomatic":
        # the kernel oracle can only *strengthen* the floor: a cycle
        # whose differential spec demands a stronger mode at a slot
        # wins (the floor is base-granular; kernels are memory-model
        # exact).  Cycles the hand fences never constrained (one-sided
        # placements covered by the algorithm's CAS protocol instead)
        # are vacuous and contribute nothing.
        kernels, n_signatures = distill_kernels(entry, analysis)
        kernel_assignment, per_kernel = synthesize_kernel_slots(
            entry, analysis, kernels, on_progress=on_progress)
        for slot, mode in kernel_assignment.items():
            if _RANK[mode] > _RANK[assignment.get(slot, "none")]:
                assignment[slot] = mode
        kernel_kills = kernel_mutant_kills(entry, analysis, kernels)
        kernel_payload = {
            "signatures": n_signatures,
            "distilled": len(kernels),
            "truncated": n_signatures > len(kernels),
            "vacuous": sum(1 for k in kernels if not k.forbidden),
            "per_kernel": per_kernel,
        }
    if not _static_floor_holds(analysis, assignment):
        raise SynthesisError(
            f"{name}: synthesized assignment fails the static "
            f"delay-pair floor -- weakening bug")

    # calibrate the runtime monitor spec against the hand build before
    # judging anything with it (see calibrate_patterns)
    patterns, discarded = calibrate_patterns(
        entry, analysis.hand_enforced, scenarios, seeds,
        base_budget=base_budget, on_progress=on_progress)

    # the anti-vacuity battery polices every app through the chaos
    # oracle; kernel apps carry the static kernel admits as additional
    # (exhaustive) kill evidence
    battery = run_mutation_battery(
        entry, analysis, patterns, mutant_scenarios, mutant_seeds,
        on_progress=on_progress)
    for key, kill in kernel_kills.items():
        if key in battery:
            battery[key]["kernel_admit"] = kill["evidence"]
            battery[key]["killed"] = battery[key]["killed"] or kill["killed"]

    scope = plan_scope(entry, assignment)
    synth_plan = FencePlan(dict(assignment), default="none")

    hand_verdict = chaos_validate(
        entry, FencePlan.hand(), entry.hand_scope, patterns,
        scenarios, seeds, base_budget=base_budget, on_progress=on_progress)
    synth_verdict = chaos_validate(
        entry, synth_plan, scope, patterns,
        scenarios, seeds, base_budget=base_budget, on_progress=on_progress)
    if hand_verdict["ok"] and not synth_verdict["ok"]:
        f = synth_verdict["failures"][0]
        raise SynthesisError(
            f"{name}: oracle disagreement: the static delay-set floor "
            f"accepts the synthesized placement but chaos run "
            f"scenario={f['scenario']} seed={f['seed']} reports "
            f"{f['status']}: {f['detail']}"
        )

    stats = _battery_stats(battery)
    sound = hand_verdict["ok"] and synth_verdict["ok"]
    if entry.oracle == "dpor+axiomatic":
        confidence = 1.0 if sound else 0.0   # exhaustive kernel proof
    else:
        confidence = _confidence(stats["p_floor"], synth_verdict["runs"]) \
            if sound else 0.0

    cost = None
    if measure_costs:
        baseline = measure_app_cycles(
            entry, FencePlan.none(), entry.hand_scope, check=False)
        hand_cycles = measure_app_cycles(
            entry, FencePlan.hand(), entry.hand_scope)
        synth_cycles = measure_app_cycles(entry, synth_plan, scope)
        cost = {
            "baseline_cycles": baseline,
            "hand_cycles": hand_cycles,
            "synth_cycles": synth_cycles,
            "hand_stall": (hand_cycles - baseline
                           if None not in (hand_cycles, baseline) else None),
            "synth_stall": (synth_cycles - baseline
                            if None not in (synth_cycles, baseline) else None),
        }

    hand_count = len(analysis.slots)
    synth_count = sum(1 for m in assignment.values() if m != "none")
    killed_all = all(m["killed"] for m in battery.values())
    return {
        # the committed acceptance bar: both placements proven sound by
        # the designated oracle, no more fences than hand, and every
        # seeded mutant killed
        "ok": sound and synth_count <= hand_count and killed_all,
        "app": name,
        "oracle": entry.oracle,
        "schedule": entry.schedule,
        "note": entry.note,
        "recording": {
            "accesses": sum(len(ops) for ops in analysis.skel.threads),
            "fences": len(analysis.skel.fences),
            "steps": analysis.skel.steps,
        },
        "analysis": {
            "critical_cycles": len(analysis.cycles),
            "delay_pairs": len(analysis.pairs),
            "components": analysis.components,
            "patterns": sorted(list(p) for p in analysis.patterns),
            "hand_enforced": sorted(list(p) for p in analysis.hand_enforced),
        },
        "monitor": {
            "candidates": len(analysis.hand_enforced),
            "monitored": len(patterns),
            "calibrated_out": sorted(list(p) for p in discarded),
        },
        "slots": slots_payload,
        "synthesized": {s: assignment[s] for s in sorted(assignment)},
        "scope": scope.value,
        "kernels": kernel_payload,
        "fences": {"hand": hand_count, "synthesized": synth_count},
        "soundness": {
            "method": entry.oracle,
            "sound": sound,
            "hand": hand_verdict,
            "synthesized": synth_verdict,
            "confidence": confidence,
        },
        "mutation": {"battery": battery, **stats},
        "cost": cost,
    }
