"""Automatic scoped-fence synthesis over the litmus placement lattice.

Prior fence-insertion work minimises fence *count* -- Alglave et al.
("Don't sit on the fence") via whole-program static analysis, Joshi &
Kroening via reorder-bounded model checking.  This package minimises
simulator-measured *stall cost* instead, which is the quantity the
paper's scoped fences actually trade on: an ``S-FENCE[set,...]`` that
skips a cold private store buys real cycles that a fence census can't
see.

Given a litmus test (or a litmus-DSL kernel distilled from an ``apps/``
algorithm) with its fences stripped, the synthesizer

1. enumerates the canonical insertion *sites* (after every non-final
   memory operation per thread -- the same points
   :mod:`repro.verify.modes` uses, :mod:`~repro.synth.sites`),
2. probes a per-(site, mode) stall estimate on the event-driven
   fast-path engine (:mod:`~repro.synth.cost`),
3. walks the placement x mode lattice (``none`` / ``full`` /
   ``sfence-class`` / ``sfence-set`` per site) cheapest-estimate-first,
   pruning assignments dominated by a known-unsound weaker one, and
4. accepts a candidate only when **both** independent oracles -- the
   DPOR explorer (:mod:`repro.verify.explorer`) and the axiomatic
   enumerator (:func:`repro.core.semantics.reference_allowed_outcomes`)
   -- prove its allowed-outcome set excludes every bad outcome, then
   descends to a local cost minimum so no one-step-weakened neighbour
   is both sound and strictly cheaper (:mod:`~repro.synth.search`).

The synthesis corpus (:mod:`~repro.synth.corpus`) pairs each stripped
program with its hand-written placement; :mod:`~repro.synth.report`
runs the comparison as campaign ``synth`` jobs and emits
``synth-report.json`` plus the synthesized-vs-hand-written table of
``python -m repro synth``.

:mod:`~repro.synth.programs` scales the same recipe to whole programs:
insertion sites and the reduced mode lattice come from the delay-set
analysis of a concrete recording of each ``apps/``/``algorithms/``
workload, distillable cycle signatures are proven by the DPOR +
axiomatic kernel oracles, and full-scale apps are policed by the
chaos-campaign oracle (seeded fault schedules + the delay-pair runtime
checker, with rejection-sampling confidence calibrated against the
mutation battery); ``python -m repro synth --apps`` emits
``app-synth-report.json``.
"""

from .corpus import SYNTH_CORPUS, synth_entry
from .programs import APP_CORPUS, app_entry, app_names, run_app_synth_case
from .report import (
    APP_REPORT_PATH,
    REPORT_PATH,
    assemble_app_synth_report,
    assemble_synth_report,
    format_app_synth_failures,
    format_app_synth_report,
    format_synth_failures,
    format_synth_report,
    run_synth_case,
    write_app_synth_report,
    write_synth_report,
)
from .search import SynthesisError, SynthesisResult, synthesize
from .sites import MODES, FenceSite, apply_placement, fence_sites

__all__ = [
    "APP_CORPUS",
    "APP_REPORT_PATH",
    "MODES",
    "REPORT_PATH",
    "FenceSite",
    "SYNTH_CORPUS",
    "SynthesisError",
    "SynthesisResult",
    "app_entry",
    "app_names",
    "apply_placement",
    "assemble_app_synth_report",
    "assemble_synth_report",
    "fence_sites",
    "format_app_synth_failures",
    "format_app_synth_report",
    "format_synth_failures",
    "format_synth_report",
    "run_app_synth_case",
    "run_synth_case",
    "synth_entry",
    "synthesize",
    "write_app_synth_report",
    "write_synth_report",
]
