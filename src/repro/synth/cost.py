"""Simulated stall-cost probes for the synthesis search.

Cost is measured, not modelled: a variant's cost is the total simulated
cycles of a :func:`repro.litmus.dsl.run_litmus` sweep over a fixed
timing-offset grid on the event-driven fast-path engine, and a
placement's *stall* is that total minus the fence-free baseline's.
This is exactly the quantity the paper trades on -- a fence's cost is
the drain it actually waits out, which depends on what else is in
flight, not on how many fences the source contains.

Per-(site, mode) *estimates* measure each site alone (one fence in an
otherwise fence-free program); the search orders candidates by the sum
of their sites' solo estimates.  The sum is used as an admissible
bound for pruning: a solo fence waits out the full undrained buffer
its site sees, while in a multi-fence placement an earlier fence has
already drained part of that traffic, so summed solo stalls bound the
combined placement's stall from above and scanning a cost-sorted
candidate list can stop at the first estimate past the best measured
stall.  (Where the workload violates that sub-additivity the search
still never returns an unsound or locally non-minimal placement --
the bound only shapes which corners of the lattice get measured; the
golden suite pins the outcome.)

Every measurement is memoised per process in the campaign warm slot,
keyed by the variant's full content and the offset grid, so persistent
pool workers and the in-process test suite never pay for the same
probe twice.
"""

from __future__ import annotations

from ..litmus.dsl import LitmusTest, run_litmus
from ..sim.config import MemoryModel
from .sites import FenceSite, MODES, apply_placement

#: timing-offset grid cost probes sweep (16 simulations per probe)
PROBE_OFFSETS = [0, 1, 40, 150]
#: the quick-CI grid (4 simulations per probe)
SMOKE_PROBE_OFFSETS = [0, 40]


def variant_key(test: LitmusTest) -> tuple:
    """Full-content key of one concrete variant (memoisation-safe)."""
    return (
        test.name,
        tuple(tuple(stmts) for stmts in test.threads),
        tuple(sorted(test.init.items())),
        tuple(sorted(test.flagged)),
        test.condition,
    )


def placement_cycles(
    variant: LitmusTest, offsets: list[int], mem_backend: str = "mesi"
) -> int:
    """Total simulated cycles of one variant over the offset grid.

    The coherence backend is part of the memo key: cost is a timing
    quantity, and the same placement stalls differently when every sync
    point pays SI/SD work instead of riding free on invalidations.
    """
    from ..campaign.jobs import warm_slot

    memo = warm_slot("synth-cycles")
    key = (variant_key(variant), tuple(offsets), mem_backend)
    cycles = memo.get(key)
    if cycles is None:
        run = run_litmus(variant, MemoryModel.RMO, list(offsets),
                         mem_backend=mem_backend)
        cycles = memo[key] = run.total_cycles
    return cycles


def site_estimates(
    stripped: LitmusTest,
    sites: list[FenceSite],
    offsets: list[int],
    baseline_cycles: int,
    modes: tuple[str, ...] = MODES,
    on_probe=None,
    mem_backend: str = "mesi",
) -> dict[tuple[int, str], int]:
    """Solo stall estimate for every (site index, non-none mode).

    Negative deltas (second-order scheduling noise) clamp to zero so
    the search's priority stays an admissible lower bound of ``0 <=
    stall``.
    """
    estimates: dict[tuple[int, str], int] = {}
    for i in range(len(sites)):
        for mode in modes:
            if mode == "none":
                estimates[(i, mode)] = 0
                continue
            assignment = tuple(
                mode if j == i else "none" for j in range(len(sites))
            )
            variant = apply_placement(stripped, sites, assignment)
            cycles = placement_cycles(variant, offsets, mem_backend)
            estimates[(i, mode)] = max(0, cycles - baseline_cycles)
            if on_probe is not None:
                on_probe()
    return estimates
