"""The synthesis corpus: stripped programs + hand-written placements.

Each entry pairs a litmus program (the synthesizer strips any fences
it carries) with the *hand-written* placement a careful developer
ships for the same ordering problem, so ``python -m repro synth`` can
table synthesized-vs-hand-written fence count, mode mix and measured
stall cycles.  Both sources share one ``exists`` clause and register
set, so the bad-outcome spec and the two oracles apply to either
verbatim.

Four classics cover the canonical relaxations:

* **SB** / **MP** / **WRC** are the litmus corpus programs; their
  hand-written placements are the corpus' own fenced siblings
  (``SB+fences``-style full fences; WRC keeps the hand version's
  traditional fence on the lone-store thread, which orders nothing --
  exactly the kind of paid-for-nothing fence synthesis deletes).
* **IRIW** needs independent reads of independent writes to stay
  consistent: hand-written full fences between each reader's loads.

Two kernels are distilled from the ``apps/`` suite -- small enough for
exhaustive oracles, faithful to the fence problem the app actually
has (unflagged private traffic in flight at the fence, the situation
scoped fences exist for):

* **barnes-publish** (from :mod:`repro.apps.barnes`): a thread
  publishes a flagged position update, spills to private unflagged
  scratch, then raises the flag; the reader polls the flag and reads
  the position.  The hand-written version brackets *every* store with
  ``fence.set`` the way barnes' SC-by-fences compilation does at
  delay-set boundaries.
* **ptc-handoff** (from :mod:`repro.apps.ptc` via its Chase-Lev
  deques): the owner stores a task slot, bumps an unflagged ticket
  counter, then publishes ``bottom``; the thief reads ``bottom`` then
  the slot.  The hand-written fences are the deque's class-scope
  S-Fences -- which, in a litmus program with no method scopes,
  degrade to the conservative global interpretation and wait out the
  ticket store the set-scope fence skips.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..litmus.dsl import parse_litmus


@dataclass(frozen=True)
class SynthEntry:
    """One synthesis case: the stripped program and the hand placement."""

    name: str
    source: str          # synthesis input (fences, if any, are stripped)
    handwritten: str     # the developer placement to compare against
    note: str = ""


SYNTH_CORPUS: list[SynthEntry] = [
    SynthEntry(
        "SB",
        """
        name SB
        x = 1  | y = 1
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """,
        """
        name SB
        x = 1  | y = 1
        fence  | fence
        r0 = y | r1 = x
        exists r0 == 0 and r1 == 0
        """,
        note="store buffering; hand-written full fences (corpus SB+fences)",
    ),
    SynthEntry(
        "MP",
        """
        name MP
        x = 1  | rw = y
        y = 1  | delay
               | r0 = y
               | r1 = x
        exists r0 == 1 and r1 == 0
        """,
        """
        name MP
        x = 1  | rw = y
        fence  | delay
        y = 1  | r0 = y
               | fence
               | r1 = x
        exists r0 == 1 and r1 == 0
        """,
        note="message passing; hand-written full publish/consume fences",
    ),
    SynthEntry(
        "WRC",
        """
        name WRC
        x = 1  | r0 = x | r1 = y
               | y = 1  | r2 = x
        exists r0 == 1 and r1 == 1 and r2 == 0
        """,
        """
        name WRC
        x = 1  | r0 = x | r1 = y
        fence  | fence  | fence
               | y = 1  | r2 = x
        exists r0 == 1 and r1 == 1 and r2 == 0
        """,
        note="write-to-read causality; hand version fences all three "
             "threads (corpus WRC+fences), including the lone-store one",
    ),
    SynthEntry(
        "IRIW",
        """
        name IRIW
        x = 1 | y = 1 | r0 = x | r2 = y
              |       | r1 = y | r3 = x
        exists r0 == 1 and r1 == 0 and r2 == 1 and r3 == 0
        """,
        """
        name IRIW
        x = 1 | y = 1 | r0 = x | r2 = y
              |       | fence  | fence
              |       | r1 = y | r3 = x
        exists r0 == 1 and r1 == 0 and r2 == 1 and r3 == 0
        """,
        note="independent reads of independent writes; hand-written full "
             "fences between each reader's loads",
    ),
    SynthEntry(
        "barnes-publish",
        """
        name barnes-publish
        flag x y
        x = 1 | r0 = y
        p = 1 | r1 = x
        y = 1 |
        exists r0 == 1 and r1 == 0
        """,
        """
        name barnes-publish
        flag x y
        x = 1     | r0 = y
        fence.set | fence.set
        p = 1     | r1 = x
        fence.set |
        y = 1     |
        exists r0 == 1 and r1 == 0
        """,
        note="apps/barnes position publish: flagged data, unflagged "
             "scratch spill, flagged flag; hand version brackets every "
             "store at the delay-set boundaries",
    ),
    SynthEntry(
        "ptc-handoff",
        """
        name ptc-handoff
        flag task bot
        task = 7   | r0 = bot
        ticket = 1 | r1 = task
        bot = 1    |
        exists r0 == 1 and r1 == 0
        """,
        """
        name ptc-handoff
        flag task bot
        task = 7    | r0 = bot
        ticket = 1  | fence.class
        fence.class | r1 = task
        bot = 1     |
        exists r0 == 1 and r1 == 0
        """,
        note="apps/ptc deque handoff: the hand-written class-scope "
             "S-Fences degrade to global scope outside any method and "
             "wait out the unflagged ticket store",
    ),
]

_BY_NAME = {entry.name: entry for entry in SYNTH_CORPUS}


def synth_entry(name: str) -> SynthEntry:
    if name not in _BY_NAME:
        raise KeyError(
            f"unknown synth test {name!r} (have {sorted(_BY_NAME)})")
    return _BY_NAME[name]


def entry_names() -> list[str]:
    return [entry.name for entry in SYNTH_CORPUS]


def _check_shared_spec() -> None:
    """Corpus invariant: stripped and hand sources share one spec."""
    for entry in SYNTH_CORPUS:
        stripped = parse_litmus(entry.source)
        hand = parse_litmus(entry.handwritten)
        assert stripped.condition == hand.condition, entry.name
        assert stripped.name == hand.name == entry.name, entry.name
