"""The placement x mode lattice: insertion sites and candidate variants.

A *site* is a canonical fence-insertion point: immediately after one
memory operation of one thread, provided a later memory operation in
the same thread exists for the fence to order against.  These are the
points :func:`repro.verify.modes.apply_fence_mode` already writes its
all-sites variants at (a fence after a thread's final memory op orders
nothing and is dropped there too), so the synthesizer's ``all-full``
corner of the lattice is the verify matrix's ``full`` mode.

A *placement* assigns each site one of four modes:

* ``none``         -- no fence at this site;
* ``sfence-set``   -- ``fence.set``: orders only set-scope-flagged
  accesses (the FSB/mapping-table hardware path);
* ``sfence-class`` -- ``fence.class``: the ScopeTracker path, which in
  a litmus program (no method scopes) takes the conservative global
  interpretation;
* ``full``         -- the traditional fence.

Abstractly (for the two oracles) ``sfence-class`` and ``full`` are the
same global-scope fence, and ``sfence-set`` scopes only the flagged
variables; the *strength* order ``none < sfence-set <= sfence-class =
full`` is what makes unsound-dominance pruning valid: strengthening a
site never grows the allowed-outcome set.  Concretely the three fence
modes drive three different hardware mechanisms with different
measured stall costs, which is the whole point of searching the
lattice instead of counting fences.

Flag handling: a test that declares ``flag`` variables keeps them; a
test with no flags gets every shared variable flagged (the
:mod:`repro.verify.modes` ``sfence-set`` convention).  The effective
flag set is applied to *every* variant -- baseline included -- so
measured costs across the lattice differ only in the fences.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..litmus.dsl import LitmusTest, litmus_variables, stmt_kind

#: the per-site mode lattice, weakest first (report + tie-break order)
MODES = ("none", "sfence-set", "sfence-class", "full")

#: DSL statement inserted for each non-``none`` mode
MODE_STMT = {
    "full": "fence",
    "sfence-class": "fence.class",
    "sfence-set": "fence.set",
}

#: abstract scope each mode presents to the oracles
ABSTRACT_SCOPE = {
    "none": "none",
    "sfence-set": "set",
    "sfence-class": "global",
    "full": "global",
}

#: numeric abstract strength per mode (dominance pruning compares these)
STRENGTH = {"none": 0, "set": 1, "global": 2}

#: one-step weakenings, the minimality fuzzer's neighbourhood
WEAKEN_STEP = {"full": "sfence-class", "sfence-class": "sfence-set",
               "sfence-set": "none"}


@dataclass(frozen=True)
class FenceSite:
    """One canonical insertion point in a (fence-stripped) test."""

    thread: int      # thread index
    stmt_index: int  # index of the memory-op statement in that thread
    label: str       # e.g. ``"T0:x = 1"`` -- stable report/golden key


def effective_flags(test: LitmusTest) -> set[str]:
    """The flag set every lattice variant of ``test`` runs under."""
    return set(test.flagged) or litmus_variables(test)


def strip_test(test: LitmusTest) -> LitmusTest:
    """``test`` with every fence removed and effective flags applied."""
    threads = [
        [stmt for stmt in stmts if stmt_kind(stmt) != "fence"]
        for stmts in test.threads
    ]
    return LitmusTest(test.name, threads, dict(test.init),
                      effective_flags(test), test.condition)


def fence_sites(stripped: LitmusTest) -> list[FenceSite]:
    """Every canonical insertion site of a fence-stripped test.

    Sites appear in (thread, program-order) order; a fence after the
    final memory operation of a thread is not a site (nothing left in
    that thread for it to order, so it can never change the allowed
    set -- only waste cycles).
    """
    sites: list[FenceSite] = []
    for t, stmts in enumerate(stripped.threads):
        mem_indices = [
            i for i, stmt in enumerate(stmts)
            if stmt_kind(stmt) in ("store", "load")
        ]
        for i in mem_indices[:-1]:
            sites.append(FenceSite(t, i, f"T{t}:{stmts[i]}"))
    return sites


def apply_placement(
    stripped: LitmusTest,
    sites: list[FenceSite],
    assignment: tuple[str, ...],
) -> LitmusTest:
    """The concrete variant of ``stripped`` under one mode assignment."""
    if len(sites) != len(assignment):
        raise ValueError(
            f"assignment has {len(assignment)} modes for {len(sites)} sites")
    insert: dict[tuple[int, int], str] = {}
    for site, mode in zip(sites, assignment):
        if mode == "none":
            continue
        if mode not in MODE_STMT:
            raise KeyError(f"unknown fence mode {mode!r} (have {MODES})")
        insert[(site.thread, site.stmt_index)] = MODE_STMT[mode]
    threads: list[list[str]] = []
    for t, stmts in enumerate(stripped.threads):
        rewritten: list[str] = []
        for i, stmt in enumerate(stmts):
            rewritten.append(stmt)
            fence = insert.get((t, i))
            if fence is not None:
                rewritten.append(fence)
        threads.append(rewritten)
    return LitmusTest(stripped.name, threads, dict(stripped.init),
                      set(stripped.flagged), stripped.condition)


def abstract_signature(assignment: tuple[str, ...]) -> tuple[str, ...]:
    """The oracle-visible shape of an assignment (class and full merge)."""
    return tuple(ABSTRACT_SCOPE[mode] for mode in assignment)


def dominated_by(sig_a: tuple[str, ...], sig_b: tuple[str, ...]) -> bool:
    """Is abstract signature ``a`` no stronger than ``b`` at every site?

    If so and ``b`` is unsound, ``a`` is unsound too: weakening a site
    only grows the allowed-outcome set, so every bad outcome ``b``
    admits survives in ``a``.
    """
    return all(STRENGTH[a] <= STRENGTH[b] for a, b in zip(sig_a, sig_b))


def weakened_neighbors(assignment: tuple[str, ...]):
    """Every one-step-weakened neighbour, in deterministic site order.

    Yields ``(site_index, neighbour_assignment)`` pairs.  This is the
    neighbourhood the local-descent phase and the minimality fuzzer
    both walk: one site, one step down its weakening chain
    ``full -> sfence-class -> sfence-set -> none``.
    """
    for i, mode in enumerate(assignment):
        weaker = WEAKEN_STEP.get(mode)
        if weaker is not None:
            yield i, assignment[:i] + (weaker,) + assignment[i + 1:]
