"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``fig12`` / ``fig13`` / ``fig14`` / ``fig15`` / ``fig16`` — rerun one
  of the paper's figures and print the comparison table.
* ``hwcost`` — print the Section VI-E hardware bill of materials.
* ``litmus <file>`` — run a textual litmus test (see
  :mod:`repro.litmus.dsl`) and report the observed outcomes.
* ``chaos`` — fault-injection sweep over the lock-free algorithm suite
  with ordering-invariant checking (see :mod:`repro.chaos`); exits
  non-zero if any case fails.
* ``campaign`` — run job sets (chaos × seeds, figure cells, the litmus
  corpus) on the parallel campaign engine with an on-disk result cache
  (see :mod:`repro.campaign`).  Transient worker failures retry with
  backoff (``--retries``); whatever still ends ``worker-crash`` /
  ``worker-timeout`` / ``error`` is summarised per classification and
  the command exits non-zero.  ``--chaos-infra <seed>`` instead runs
  the resilience differential: a scripted infrastructure fault
  campaign (worker kills, stalls, cache corruption, a torn manifest)
  that must converge to the byte-identical outcome fingerprint of a
  fault-free sweep (see :mod:`repro.campaign.resilience`).
* ``perf`` — time representative workloads under all three execution
  engines (dense reference loop, event-driven fast path, and the
  trace-compiled engine) and write ``BENCH_simperf.json`` (see
  :mod:`repro.analysis.simperf`); exits non-zero if the event-engine
  speedup on the high-latency workload falls below ``--min-speedup``,
  if the trace-compiled engine fails to beat the event engine by
  ``--min-compile-ratio``, or if any engine's result fingerprint
  diverges.  ``--mem-backend mesi,sisd`` records a column set per
  coherence backend.
  With ``--campaign``, instead race the persistent worker pool against
  the legacy ``--fork-per-job`` pool over whole sweeps and write
  ``BENCH_campaign.json`` (see :mod:`repro.analysis.campthru`); exits
  non-zero if the cold-sweep speedup falls below ``--min-jobs-ratio``
  or the pools' outcomes diverge.
* ``verify`` — exhaustively model-check the litmus corpus across fence
  modes with the DPOR explorer, cross-check the reference model, and
  differentially verify both simulator engines for soundness and
  outcome coverage (see :mod:`repro.verify`); writes
  ``verify-report.json`` and exits non-zero on any soundness violation
  or explorer/reference disagreement.
* ``synth`` — automatically synthesize the cheapest sound fence
  placement for every synthesis-corpus entry (classic litmus tests
  plus kernels distilled from the ``apps/`` algorithms), prove each
  placement with both the DPOR explorer and the axiomatic reference,
  and print the synthesized-vs-hand-written comparison (fence count,
  mode mix, simulated stall cycles; see :mod:`repro.synth`); writes
  ``synth-report.json`` and exits non-zero if any hand-written
  placement is unsound or any synthesized placement costs more stall
  than the hand-written one.  ``synth --apps`` runs the whole-program
  path instead: fence slots and the reduced mode lattice derived from
  delay-set analysis of the real ``apps/``/``algorithms/`` workloads,
  proven by distilled kernels (DPOR + axiomatic) or the chaos-campaign
  oracle, policed by an anti-vacuity mutation battery; writes
  ``app-synth-report.json`` and exits non-zero naming the
  counterexample run when an oracle rejects a placement.

Every simulation-grid command accepts ``--parallel N`` to fan cells out
over N crash-isolated worker processes (default ``auto``: one per CPU,
capped), ``--fork-per-job`` to fall back to the legacy
one-process-per-job pool, and ``--cache-dir``/``--no-cache`` to control
result memoisation.  Parallelism and caching never change any number in
any table — only how fast it appears.  The
figure commands are thin wrappers over the same cell drivers the
pytest-benchmark targets use; ``--scale`` shrinks or grows workloads.
``--dense-loop`` runs any command on the per-cycle reference engine
instead of the event-driven scheduler, and ``--no-trace-compile``
disables batch block admission so every op is interpreted — escape
hatches that change wall-clock time and nothing else (the compile flag
does participate in campaign cache keys, so toggling it re-runs cells
cold).  ``--mem-backend`` picks the
coherence backend timing model (``mesi`` invalidation-based directory
coherence, the default, or ``sisd`` self-invalidation/self-downgrade);
``verify`` accepts a comma-separated list and fans the soundness matrix
out over every named backend, and the dedicated ``figbackend`` figure
sweeps the S-Fence / full-fence / SiSd three-way comparison and writes
``backend-compare-report.json``.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.report import (
    StreamAggregator,
    failure_counts,
    format_table,
    render_failure_counts,
)
from .core.hwcost import estimate_cost
from .sim.config import MemoryModel, SimConfig

#: default on-disk result cache location (relative to the working dir)
DEFAULT_CACHE_DIR = ".campaign-cache"

#: full chaos sweep depth when neither --seeds nor --smoke is given
CHAOS_DEFAULT_SEEDS = 20
CHAOS_SMOKE_SEEDS = 2


# --------------------------------------------------------------- campaign glue
def _parallel_arg(value: str):
    """``--parallel`` accepts a worker count or the literal ``auto``."""
    if value == "auto":
        return "auto"
    return int(value)


def _resolve_parallel(ns) -> None:
    """Turn the raw ``--parallel`` value into a worker count.

    ``ns.parallel_explicit`` records whether the user picked one: the
    implicit ``auto`` default must never change *what* runs, only how
    fast, so side effects keyed on parallelism -- the shared default
    cache directory, specifically -- stay opt-in.
    """
    from .campaign import auto_parallel

    ns.parallel_explicit = ns.parallel is not None
    if ns.parallel is None or ns.parallel == "auto":
        ns.parallel = auto_parallel()


def _parse_backends(ns) -> list[str] | None:
    """The ``--mem-backend`` value as a validated list (None on error)."""
    from .sim.config import MEM_BACKENDS

    backends = [b.strip() for b in ns.mem_backend.split(",") if b.strip()]
    if not backends:
        backends = ["mesi"]
    for backend in backends:
        if backend not in MEM_BACKENDS:
            print(f"{ns.command}: unknown memory backend {backend!r} "
                  f"(have {MEM_BACKENDS})", file=sys.stderr)
            return None
    return backends


def _single_backend(ns) -> str | None:
    """One backend for single-sweep commands (None on error).

    Only ``verify`` fans out over a backend list; everywhere else a
    comma-separated ``--mem-backend`` is an error, not a silent pick.
    """
    backends = _parse_backends(ns)
    if backends is None:
        return None
    if len(backends) > 1:
        print(f"{ns.command}: --mem-backend takes a single backend here "
              f"(only verify sweeps a comma-separated list)", file=sys.stderr)
        return None
    return backends[0]


def _make_cache(ns):
    """The ResultCache this invocation should use (or None)."""
    from .campaign import ResultCache

    if ns.no_cache:
        return None
    if ns.cache_dir:
        return ResultCache(ns.cache_dir)
    # explicitly parallel runs default to the shared cache so
    # re-invocations resume; the implicit auto default does not write
    # into the working directory unasked
    if ns.parallel > 0 and ns.parallel_explicit:
        return ResultCache(DEFAULT_CACHE_DIR)
    return None


def _run_jobs(jobs, ns, label: str):
    """Execute a job list under this invocation's engine settings."""
    from .campaign import RetryPolicy, run_campaign

    agg = StreamAggregator(len(jobs))
    live = sys.stderr.isatty()

    def progress(outcome, done, total):
        agg.add(outcome.ok, outcome.cached, outcome.job.label())
        if live:
            print(f"\r{label}: {agg.line()}", end="", file=sys.stderr)

    def on_event(kind, message):
        # retries, pool downgrades, serial fallback: visible as they
        # happen and retained for the end-of-run summary
        agg.note(f"{kind}: {message}")
        print(("\n" if live else "") + f"{label}: {message}", file=sys.stderr)

    retry = RetryPolicy(retries=max(0, ns.retries),
                        backoff_base=ns.retry_backoff)
    result = run_campaign(jobs, parallel=ns.parallel, cache=_make_cache(ns),
                          progress=progress, job_timeout=ns.job_timeout,
                          fork_per_job=ns.fork_per_job, retry=retry,
                          on_event=on_event)
    if live:
        print(file=sys.stderr)
    extra = ""
    if result.retried:
        extra = (f", {result.retried} retried, "
                 f"{len(result.recovered)} recovered")
    print(f"{label}: {agg.summary()} "
          f"({result.executed} executed, {result.cached} from cache{extra})",
          file=sys.stderr)
    if result.failures:
        counts: dict[str, int] = {}
        for outcome in result.failures:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        tally = " ".join(f"{s}={n}" for s, n in sorted(counts.items()))
        print(f"{label}: unrecovered failures after retries: {tally}",
              file=sys.stderr)
    return result


def cmd_figure(figure: str, ns) -> int:
    from .campaign import assemble_figure, figure_jobs

    backend = _single_backend(ns)
    if backend is None:
        return 2
    jobs = figure_jobs(figure, ns.scale, dense_loop=ns.dense_loop,
                       mem_backend=backend, trace_compile=ns.trace_compile)
    result = _run_jobs(jobs, ns, figure)
    print(assemble_figure(figure, jobs, result.results()))
    if figure == "figbackend":
        from .campaign import backend_compare_report, write_backend_compare_report

        report = backend_compare_report(jobs, result.results())
        write_backend_compare_report(report, ns.backend_out)
        print(f"report written to {ns.backend_out}", file=sys.stderr)
    for outcome in result.failures:
        print(f"\nFAIL {outcome.job.label()}: {outcome.status}\n{outcome.error}",
              file=sys.stderr)
    return 0 if result.ok else 1


def cmd_hwcost(ns) -> int:
    cost = estimate_cost(SimConfig())
    print(format_table(
        ["structure", "bits"],
        [
            ("FSB (ROB)", cost.fsb_rob_bits),
            ("FSB (SB)", cost.fsb_sb_bits),
            ("mapping table", cost.mapping_table_bits),
            ("FSS + FSS'", cost.fss_bits + cost.shadow_fss_bits),
            ("overflow counter", cost.overflow_counter_bits),
            ("total", f"{cost.total_bits} ({cost.total_bytes:.1f} bytes)"),
        ],
        title="Section VI-E -- hardware cost per core",
    ))
    return 0


def cmd_litmus(path: str, model_name: str, dense_loop: bool = False,
               mem_backend: str = "mesi", trace_compile: bool = True) -> int:
    from .litmus.dsl import LitmusParseError, parse_litmus, run_litmus

    try:
        with open(path) as fh:
            source = fh.read()
    except OSError as exc:
        print(f"litmus: cannot read {path}: {exc.strerror or exc}", file=sys.stderr)
        return 2
    try:
        # statement parsing is partly lazy (thread bodies are parsed as
        # the guest generators execute), so run under the same guard
        test = parse_litmus(source)
        run = run_litmus(test, MemoryModel(model_name), dense_loop=dense_loop,
                         mem_backend=mem_backend, trace_compile=trace_compile)
    except LitmusParseError as exc:
        print(f"litmus: {path}: {exc}", file=sys.stderr)
        return 2
    print(f"litmus {test.name} under {model_name}:")
    print(f"  registers: {run.register_names}")
    for outcome in sorted(run.outcomes, key=str):
        print(f"  observed: {outcome}")
    if test.condition:
        verdict = "OBSERVED" if run.condition_observed else "never observed"
        print(f"  exists {test.condition}: {verdict}")
        for outcome in run.matching_outcomes():
            print(f"    matching outcome: {outcome}")
    return 0


# ----------------------------------------------------------------------- chaos
def _resolve_chaos_seeds(ns) -> tuple[int, bool]:
    """The seeds-per-cell count, and whether --smoke truncated it."""
    if ns.seeds is not None:
        return ns.seeds, False
    if ns.smoke:
        return CHAOS_SMOKE_SEEDS, True
    return CHAOS_DEFAULT_SEEDS, False


def _print_chaos_summary(reports, n_seeds: int, seed_base: int,
                         truncated: bool) -> int:
    """Aggregate table + exit-status summary shared by both chaos paths."""
    from .chaos.runner import ALGORITHMS, SCENARIOS

    scenarios = [s for s in SCENARIOS if any(r.scenario == s for r in reports)]
    algos = [a for a in ALGORITHMS if any(r.algo == a for r in reports)]
    rows = []
    for scenario in scenarios:
        for algo in algos:
            cell = [r for r in reports if r.scenario == scenario and r.algo == algo]
            if not cell:
                continue
            n_ok = sum(1 for r in cell if r.ok)
            injected = sum(sum(r.injected.values()) for r in cell)
            rows.append((
                scenario, algo, f"{n_ok}/{len(cell)}",
                sum(r.fences_checked for r in cell),
                sum(r.violations for r in cell),
                injected,
            ))
    print(format_table(
        ["scenario", "algo", "ok", "fences checked", "violations", "faults injected"],
        rows,
        title=f"chaos sweep -- {n_seeds} seed(s) from {seed_base}",
    ))
    failures = [r for r in reports if not r.ok]
    for r in failures:
        print(f"\nFAIL {r.algo}/{r.scenario} seed={r.seed} scope={r.scope}: {r.status}")
        if r.detail:
            print(r.detail)

    # exit-status summary: per-scenario failure counts are always
    # surfaced, and a truncated seed list is called out explicitly so a
    # green smoke run can't be mistaken for full-depth coverage
    per_scenario = failure_counts((r.scenario, r.ok) for r in reports)
    if truncated:
        dropped = CHAOS_DEFAULT_SEEDS - n_seeds
        print(f"\nsmoke: ran {n_seeds} of the default {CHAOS_DEFAULT_SEEDS} "
              f"seeds per cell ({dropped} dropped; coverage is reduced)",
              file=sys.stderr)
    print(f"failures by scenario: {render_failure_counts(per_scenario)}",
          file=sys.stderr)
    if failures:
        print(f"\n{len(failures)}/{len(reports)} case(s) failed", file=sys.stderr)
        return 1
    print(f"\nall {len(reports)} cases passed")
    return 0


def _chaos_reports_from_outcomes(outcomes):
    """ChaosReports from campaign outcomes (engine failures included)."""
    from .chaos.runner import ChaosReport

    reports = []
    for outcome in outcomes:
        if outcome.ok:
            reports.append(ChaosReport(**outcome.result))
        else:
            p = outcome.job.params
            reports.append(ChaosReport(
                algo=p["algo"], scenario=p["scenario"], seed=p["seed"],
                scope="?", status=outcome.status, detail=outcome.error,
            ))
    return reports


def cmd_chaos(ns) -> int:
    from .chaos.runner import sweep

    algos = ns.algos.split(",") if ns.algos else None
    scenarios = ns.scenarios.split(",") if ns.scenarios else None
    n_seeds, truncated = _resolve_chaos_seeds(ns)
    backend = _single_backend(ns)
    if backend is None:
        return 2

    try:
        if ns.parallel > 0:
            from .campaign import chaos_jobs

            jobs = chaos_jobs(
                algos=algos, scenarios=scenarios, n_seeds=n_seeds,
                seed_base=ns.seed_base, base_budget=ns.budget,
                dense_loop=ns.dense_loop, mem_backend=backend,
                trace_compile=ns.trace_compile,
            )
            result = _run_jobs(jobs, ns, "chaos")
            reports = _chaos_reports_from_outcomes(result.outcomes)
        else:
            reports = sweep(
                algos=algos, scenarios=scenarios, n_seeds=n_seeds,
                seed_base=ns.seed_base, base_budget=ns.budget,
                dense_loop=ns.dense_loop, mem_backend=backend,
                trace_compile=ns.trace_compile,
            )
    except KeyError as exc:
        print(f"chaos: {exc.args[0]}", file=sys.stderr)
        return 2
    return _print_chaos_summary(reports, n_seeds, ns.seed_base, truncated)


# ---------------------------------------------------------------------- verify
def cmd_verify(ns) -> int:
    """Exhaustive model check + simulator soundness/coverage verification."""
    from .campaign import verify_jobs
    from .verify.runner import (
        assemble_verify_report,
        format_verify_failures,
        format_verify_report,
        write_verify_report,
    )

    modes = ns.verify_modes.split(",") if ns.verify_modes else None
    engines = ns.engines.split(",") if ns.engines else None
    backends = _parse_backends(ns)
    if backends is None:
        return 2
    try:
        jobs = verify_jobs(modes=modes, engines=engines,
                           seeds=ns.verify_seeds, smoke=ns.smoke,
                           backends=backends,
                           trace_compile=ns.trace_compile)
    except KeyError as exc:
        print(f"verify: {exc.args[0]}", file=sys.stderr)
        return 2
    result = _run_jobs(jobs, ns, "verify")
    report = assemble_verify_report(
        result.outcomes, seeds=jobs[0].params["seeds"], smoke=ns.smoke,
    )
    print(format_verify_report(report))
    for line in format_verify_failures(report):
        print(line, file=sys.stderr)
    write_verify_report(report, ns.verify_out)
    print(f"report written to {ns.verify_out}", file=sys.stderr)
    if report["ok"]:
        n_cases = sum(len(t["modes"]) for t in report["tests"].values())
        print(f"verify: {n_cases} (test, mode) cases sound on "
              f"{len(report['engines'])} engine(s); zero soundness violations",
              file=sys.stderr)
        return 0
    print("verify: FAIL -- see report for details", file=sys.stderr)
    return 1


# ----------------------------------------------------------------------- synth
def cmd_synth_apps(ns) -> int:
    """Whole-program synthesis over the apps/algorithms corpus."""
    from .campaign import app_synth_jobs
    from .synth.report import (
        assemble_app_synth_report,
        format_app_synth_failures,
        format_app_synth_report,
        write_app_synth_report,
    )

    backend = _single_backend(ns)
    if backend is None:
        return 2
    if backend != "mesi":
        # the whole-program path is proven by chaos-oracle campaigns and
        # distilled kernels whose golden artifacts are mesi-timed; a
        # backend sweep there is future work, not a silent mesi run
        print("synth --apps: the whole-program path supports only "
              "--mem-backend mesi", file=sys.stderr)
        return 2
    names = ns.synth_tests.split(",") if ns.synth_tests else None
    seeds = list(range(ns.app_runs)) if ns.app_runs else None
    try:
        jobs = app_synth_jobs(names=names, seeds=seeds, smoke=ns.smoke)
    except KeyError as exc:
        print(f"synth: {exc.args[0]}", file=sys.stderr)
        return 2
    result = _run_jobs(jobs, ns, "app-synth")
    report = assemble_app_synth_report(result.outcomes, smoke=ns.smoke)
    print(format_app_synth_report(report))
    for line in format_app_synth_failures(report):
        print(line, file=sys.stderr)
    write_app_synth_report(report, ns.app_synth_out)
    print(f"report written to {ns.app_synth_out}", file=sys.stderr)
    if report["ok"]:
        t = report["totals"]
        print(f"synth --apps: {len(report['cases'])} app placement(s) proven "
              f"sound by their designated oracles; {t['synth_fences']} "
              f"synthesized fences vs {t['hand_fences']} hand-written; "
              f"mutation battery {t['killed']}/{t['mutants']}",
              file=sys.stderr)
        return 0
    print("synth --apps: FAIL -- see report for details", file=sys.stderr)
    return 1


def cmd_synth(ns) -> int:
    """Synthesize fence placements and compare against hand-written."""
    from .campaign import synth_jobs
    from .synth.report import (
        assemble_synth_report,
        format_synth_failures,
        format_synth_report,
        write_synth_report,
    )

    if ns.synth_apps:
        return cmd_synth_apps(ns)
    backend = _single_backend(ns)
    if backend is None:
        return 2
    names = ns.synth_tests.split(",") if ns.synth_tests else None
    modes = ns.synth_modes.split(",") if ns.synth_modes else None
    try:
        jobs = synth_jobs(names=names, modes=modes, smoke=ns.smoke,
                          mem_backend=backend)
    except KeyError as exc:
        print(f"synth: {exc.args[0]}", file=sys.stderr)
        return 2
    result = _run_jobs(jobs, ns, "synth")
    report = assemble_synth_report(result.outcomes, smoke=ns.smoke)
    print(format_synth_report(report))
    for line in format_synth_failures(report):
        print(line, file=sys.stderr)
    write_synth_report(report, ns.synth_out)
    print(f"report written to {ns.synth_out}", file=sys.stderr)
    if report["ok"]:
        t = report["totals"]
        print(f"synth: {len(report['cases'])} placement(s) synthesized, each "
              f"proven sound by both oracles; total stall "
              f"{t['synth_stall']} vs hand-written {t['hand_stall']} cycles",
              file=sys.stderr)
        return 0
    print("synth: FAIL -- see report for details", file=sys.stderr)
    return 1


# ------------------------------------------------------------------------ perf
def cmd_perf_campaign(ns) -> int:
    """Race the persistent pool against fork-per-job; gate the ratio."""
    from .analysis.campthru import (
        DEFAULT_MIN_RATIO,
        run_campaign_perf,
        write_report,
    )

    report = run_campaign_perf(
        parallel=ns.parallel if ns.parallel_explicit else None,
        smoke=ns.smoke,
        min_ratio=(DEFAULT_MIN_RATIO if ns.min_jobs_ratio is None
                   else ns.min_jobs_ratio),
        progress=lambda line: print(line, file=sys.stderr),
    )
    write_report(report, ns.campaign_out)
    rows = []
    for name, sweep in report["sweeps"].items():
        rows.append((
            name, sweep["jobs"],
            sweep["legacy"]["cold_s"], sweep["persistent"]["cold_s"],
            sweep["persistent"]["warm_s"],
            f"{sweep['persistent']['cold_jobs_per_s']}/s",
            f"{sweep['ratio']}x" if sweep["ratio"] is not None else "n/a",
            "yes" if sweep["identical"] else "DIVERGED",
        ))
    print(format_table(
        ["sweep", "jobs", "fork-per-job s", "persistent s", "warm s",
         "throughput", "speedup", "identical"],
        rows,
        title=f"campaign throughput -- persistent pool vs --fork-per-job "
              f"({report['parallel']} workers, {report['cpus']} cpu(s))",
    ))
    print(f"report written to {ns.campaign_out}", file=sys.stderr)
    gate = report.get("gate")
    if gate and not gate["passed"]:
        print(f"perf: FAIL -- {gate['sweep']} cold speedup {gate['ratio']}x "
              f"< required {gate['min_ratio']}x", file=sys.stderr)
    if not all(s["identical"] for s in report["sweeps"].values()):
        print("perf: FAIL -- pool outcomes diverged", file=sys.stderr)
    if any(s["persistent"]["warm_executed"] or s["legacy"]["warm_executed"]
           for s in report["sweeps"].values()):
        print("perf: FAIL -- a warm re-run executed jobs", file=sys.stderr)
    return 0 if report["ok"] else 1


def cmd_perf(ns) -> int:
    from .analysis.simperf import divergent_cells, run_perf, write_report

    if ns.campaign:
        return cmd_perf_campaign(ns)

    backends = _parse_backends(ns)
    if backends is None:
        return 2
    workloads = ns.workloads.split(",") if ns.workloads else None
    try:
        report = run_perf(
            workloads=workloads, smoke=ns.smoke, min_speedup=ns.min_speedup,
            min_compile_ratio=ns.min_compile_ratio,
            progress=lambda line: print(line, file=sys.stderr),
            mem_backends=backends, reps=ns.perf_reps,
        )
    except KeyError as exc:
        print(f"perf: {exc.args[0]}", file=sys.stderr)
        return 2
    write_report(report, ns.perf_out)
    rows = [
        (f"{name}[{backend}]" if len(backends) > 1 else name,
         cell["sim_cycles"], cell["dense_wall_s"], cell["event_wall_s"],
         cell["compiled_wall_s"],
         f"{cell['event_speedup']}x" if cell["event_speedup"] is not None else "n/a",
         f"{cell['compiled_speedup']}x" if cell["compiled_speedup"] is not None else "n/a",
         f"{cell['compile_ratio']}x" if cell["compile_ratio"] is not None else "n/a",
         "yes" if cell["identical"] else "DIVERGED")
        for name, w in report["workloads"].items()
        for backend, cell in w["backends"].items()
    ]
    print(format_table(
        ["workload", "sim cycles", "dense s", "event s", "compiled s",
         "event x", "compiled x", "vs event", "identical"],
        rows, title="simulator perf -- dense loop vs event vs trace-compiled",
    ))
    print(f"report written to {ns.perf_out}", file=sys.stderr)
    gate = report.get("gate")
    if gate and not gate.get("passed", True) and not gate.get("skipped"):
        if gate.get("min_speedup") is not None and (
                gate["speedup"] is None
                or gate["speedup"] < gate["min_speedup"]):
            print(f"perf: FAIL -- {gate['workload']} event speedup "
                  f"{gate['speedup']}x < required {gate['min_speedup']}x",
                  file=sys.stderr)
        if gate.get("min_compile_ratio") is not None and (
                gate["compile_ratio"] is None
                or gate["compile_ratio"] < gate["min_compile_ratio"]):
            print(f"perf: FAIL -- {gate['workload']} compiled/event ratio "
                  f"{gate['compile_ratio']}x < required "
                  f"{gate['min_compile_ratio']}x", file=sys.stderr)
    diverged = divergent_cells(report)
    if diverged:
        print("perf: FAIL -- identical cross-check failed: "
              + ", ".join(diverged), file=sys.stderr)
    for name in report.get("failures", ()):
        print(f"perf: FAIL -- workload gate failed: {name}", file=sys.stderr)
    return 0 if report["ok"] else 1


def _litmus_mismatch_detail(r: dict) -> str:
    """One mismatch line naming the offending outcome tuples.

    A bare "MISMATCH <name>" is undebuggable; the message carries the
    register order and either the forbidden tuples that were observed
    or the full observed set when an expected outcome never appeared.
    """
    regs = tuple(r["registers"])
    if r["condition_observed"]:
        offending = ", ".join(str(tuple(o)) for o in r["condition_outcomes"])
        return (f"campaign/litmus: {r['name']}: forbidden outcome observed -- "
                f"exists {r['condition']} matched by registers {regs} = {offending}")
    observed = ", ".join(str(tuple(o)) for o in r["outcomes"])
    return (f"campaign/litmus: {r['name']}: expected-observable outcome never "
            f"seen -- exists {r['condition']}; registers {regs} observed only "
            f"{observed}")


# -------------------------------------------------------------------- campaign
def cmd_campaign_resilience(ns) -> int:
    """``campaign --chaos-infra``: the scripted-fault differential proof."""
    from .campaign import run_resilience_differential

    report = run_resilience_differential(
        ns.chaos_infra, parallel=ns.parallel, smoke=ns.smoke,
        progress=lambda line: print(line, file=sys.stderr),
    )
    rows = [
        (name, e["executed"], e["cached"], e["retried"], e["recovered"],
         len(e["downgrades"]), e["quarantined"], e["fingerprint"][:12])
        for name, e in report["phases"].items()
    ]
    print(format_table(
        ["phase", "executed", "cached", "retried", "recovered",
         "downgrades", "quarantined", "fingerprint"],
        rows,
        title=f"campaign resilience differential -- seed {report['seed']}, "
              f"{report['jobs']} jobs, {report['parallel']} workers",
    ))
    repair = report["phases"]["recovery"]["manifest_repair"]
    if repair:
        print(f"manifest repair: {repair['dropped_lines']} torn line(s) "
              f"dropped, {repair['recovered_blobs']} blob(s) re-indexed",
              file=sys.stderr)
    if report["ok"]:
        print("chaos-infra: fault-free, faulted and recovery sweeps converged "
              "to one byte-identical outcome fingerprint")
        return 0
    reason = ("outcome fingerprints diverged" if not report["identical"]
              else "recovery incomplete, or the scripted faults never fired")
    print(f"chaos-infra: FAIL -- {reason}", file=sys.stderr)
    return 1


def cmd_campaign(ns) -> int:
    """Run the selected job sets on the engine, cached and resumable."""
    from .campaign import (
        FIGURES,
        assemble_figure,
        chaos_jobs,
        figure_jobs,
        litmus_jobs,
    )

    backend = _single_backend(ns)
    if backend is None:
        return 2
    run_chaos = ns.chaos or not (ns.figures or ns.litmus)
    figures = []
    if ns.figures:
        figures = list(FIGURES) if ns.figures == "all" else ns.figures.split(",")
        for f in figures:
            if f not in FIGURES:
                print(f"campaign: unknown figure {f!r} (have {FIGURES})",
                      file=sys.stderr)
                return 2

    status = 0
    if run_chaos:
        algos = ns.algos.split(",") if ns.algos else None
        scenarios = ns.scenarios.split(",") if ns.scenarios else None
        n_seeds, truncated = _resolve_chaos_seeds(ns)
        try:
            jobs = chaos_jobs(algos=algos, scenarios=scenarios, n_seeds=n_seeds,
                              seed_base=ns.seed_base, base_budget=ns.budget,
                              dense_loop=ns.dense_loop, mem_backend=backend,
                              trace_compile=ns.trace_compile)
        except KeyError as exc:
            print(f"campaign: {exc.args[0]}", file=sys.stderr)
            return 2
        result = _run_jobs(jobs, ns, "campaign/chaos")
        reports = _chaos_reports_from_outcomes(result.outcomes)
        status |= _print_chaos_summary(reports, n_seeds, ns.seed_base, truncated)

    for figure in figures:
        jobs = figure_jobs(figure, ns.scale, dense_loop=ns.dense_loop,
                           mem_backend=backend, trace_compile=ns.trace_compile)
        result = _run_jobs(jobs, ns, f"campaign/{figure}")
        print(assemble_figure(figure, jobs, result.results()))
        if figure == "figbackend" and result.ok:
            from .campaign import (
                backend_compare_report,
                write_backend_compare_report,
            )

            report = backend_compare_report(jobs, result.results())
            write_backend_compare_report(report, ns.backend_out)
            print(f"report written to {ns.backend_out}", file=sys.stderr)
        if not result.ok:
            status |= 1

    if ns.litmus:
        jobs = litmus_jobs(model=ns.model, dense_loop=ns.dense_loop,
                           mem_backend=backend,
                           trace_compile=ns.trace_compile)
        result = _run_jobs(jobs, ns, "campaign/litmus")
        rows = []
        mismatches = []
        for outcome in result.outcomes:
            if outcome.ok:
                r = outcome.result
                rows.append((r["name"],
                             "observable" if r["expect_observable"] else "forbidden",
                             "observed" if r["condition_observed"] else "not observed",
                             "ok" if r["ok"] else "MISMATCH"))
                if not r["ok"]:
                    mismatches.append(r)
                    status |= 1
            else:
                rows.append((outcome.job.params["name"], "?", outcome.status, "FAIL"))
                status |= 1
        print(format_table(["test", "expected (rmo)", "simulator", "verdict"],
                           rows, title="litmus corpus"))
        for r in mismatches:
            print(_litmus_mismatch_detail(r), file=sys.stderr)
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fence Scoping (SC'14) reproduction driver",
    )
    parser.add_argument(
        "command",
        choices=["fig12", "fig13", "fig14", "fig15", "fig16", "figbackend",
                 "hwcost", "litmus", "chaos", "campaign", "perf", "verify",
                 "synth"],
    )
    parser.add_argument("args", nargs="*", help="litmus: <file>")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    parser.add_argument("--model", default="rmo", help="litmus: memory model (sc/tso/pso/rmo)")
    parser.add_argument("--dense-loop", action="store_true",
                        help="run simulations on the per-cycle reference engine "
                             "instead of the event-driven fast path (identical "
                             "results, slower)")
    parser.add_argument("--mem-backend", default="mesi",
                        help="coherence backend timing model (mesi/sisd) "
                             "[mesi]; verify and perf accept a "
                             "comma-separated list and sweep each")
    parser.add_argument("--trace-compile", dest="trace_compile",
                        action="store_true", default=True,
                        help="run the event engine with trace compilation "
                             "(straight-line op runs admitted as compiled "
                             "blocks; identical results, faster) [default]")
    parser.add_argument("--no-trace-compile", dest="trace_compile",
                        action="store_false",
                        help="disable trace compilation: interpret every op "
                             "on the event engine (escape hatch; identical "
                             "results)")

    engine_group = parser.add_argument_group("campaign engine options")
    engine_group.add_argument("--parallel", type=_parallel_arg, default=None,
                              metavar="N|auto",
                              help="fan cells out over N worker processes "
                                   "(0: run in-process; auto: one per CPU, "
                                   "capped) [auto]")
    engine_group.add_argument("--fork-per-job", action="store_true",
                              help="use the legacy one-process-per-job pool "
                                   "instead of persistent chunk-pulling "
                                   "workers (slower; maximal isolation)")
    engine_group.add_argument("--cache-dir", default="",
                              help=f"result cache directory [{DEFAULT_CACHE_DIR} "
                                   f"when parallel]")
    engine_group.add_argument("--no-cache", action="store_true",
                              help="disable the on-disk result cache")
    engine_group.add_argument("--job-timeout", type=float, default=600.0,
                              help="kill a worker with no progress for this "
                                   "many seconds [600]")
    engine_group.add_argument("--retries", type=int, default=2,
                              help="re-run a job this many times after "
                                   "transient worker-crash/worker-timeout "
                                   "failures (0: fail fast) [2]")
    engine_group.add_argument("--retry-backoff", type=float, default=0.05,
                              metavar="S",
                              help="base retry backoff in seconds (doubles "
                                   "per attempt, jittered) [0.05]")
    engine_group.add_argument("--chaos-infra", type=int, default=None,
                              metavar="SEED",
                              help="campaign: run the infrastructure "
                                   "fault-injection differential (worker "
                                   "kills, stalls, cache corruption) and "
                                   "require byte-identical convergence with "
                                   "the fault-free sweep")

    chaos_group = parser.add_argument_group("chaos/campaign sweep options")
    chaos_group.add_argument("--seeds", type=int, default=None,
                             help=f"seeds per (scenario, algo) cell "
                                  f"[{CHAOS_DEFAULT_SEEDS}; --smoke: {CHAOS_SMOKE_SEEDS}]")
    chaos_group.add_argument("--seed-base", type=int, default=0,
                             help="first seed of the sweep")
    chaos_group.add_argument("--algos", default="",
                             help="comma-separated algorithm subset")
    chaos_group.add_argument("--scenarios", default="",
                             help="comma-separated scenario subset")
    chaos_group.add_argument("--budget", type=int, default=400_000,
                             help="base cycle budget before escalation")
    chaos_group.add_argument("--smoke", action="store_true",
                             help="quick CI sweep (truncated seed list)")

    campaign_group = parser.add_argument_group("campaign job sets")
    campaign_group.add_argument("--chaos", action="store_true",
                                help="campaign: include the chaos sweep (default "
                                     "when no set is selected)")
    campaign_group.add_argument("--figures", default="",
                                help="campaign: comma-separated figures "
                                     "(fig12..fig16, figbackend) or 'all'")
    campaign_group.add_argument("--backend-out",
                                default="backend-compare-report.json",
                                metavar="FILE",
                                help="figbackend: three-way comparison report "
                                     "path [backend-compare-report.json]")
    campaign_group.add_argument("--litmus", action="store_true",
                                help="campaign: include the litmus corpus")

    verify_group = parser.add_argument_group("verify options")
    verify_group.add_argument("--verify-out", default="verify-report.json",
                              metavar="FILE",
                              help="verify: report path [verify-report.json]")
    verify_group.add_argument("--verify-seeds", type=int, default=None,
                              help="verify: offset-grid seeds per case "
                                   "[2; --smoke: 1]")
    verify_group.add_argument("--verify-modes", default="",
                              help="verify: comma-separated fence-mode subset "
                                   "(orig,none,full,sfence-class,sfence-set)")
    verify_group.add_argument("--engines", default="",
                              help="verify: comma-separated engine subset "
                                   "(event,dense) [both]")

    synth_group = parser.add_argument_group("synth options")
    synth_group.add_argument("--synth-out", default="synth-report.json",
                             metavar="FILE",
                             help="synth: report path [synth-report.json]")
    synth_group.add_argument("--synth-tests", default="",
                             help="synth: comma-separated corpus subset "
                                  "(SB,MP,WRC,IRIW,barnes-publish,"
                                  "ptc-handoff)")
    synth_group.add_argument("--synth-modes", default="",
                             help="synth: comma-separated mode lattice subset "
                                  "(none,sfence-set,sfence-class,full)")
    synth_group.add_argument("--apps", dest="synth_apps", action="store_true",
                             help="synth: whole-program synthesis over the "
                                  "apps/algorithms corpus instead of the "
                                  "litmus corpus (use --synth-tests to pick "
                                  "apps: chase-lev,harris-list,barnes,ptc,"
                                  "radiosity)")
    synth_group.add_argument("--app-synth-out", default="app-synth-report.json",
                             metavar="FILE",
                             help="synth --apps: report path "
                                  "[app-synth-report.json]")
    synth_group.add_argument("--app-runs", type=int, default=0, metavar="N",
                             help="synth --apps: chaos-oracle seeds per "
                                  "scenario (0 = the corpus default)")

    perf_group = parser.add_argument_group("perf options")
    perf_group.add_argument("--perf-out", "-o", default="BENCH_simperf.json",
                            metavar="FILE",
                            help="perf: report path [BENCH_simperf.json]")
    perf_group.add_argument("--min-speedup", type=float, default=2.0,
                            help="perf: fail if the fig15-hot event-engine "
                                 "speedup over the dense loop is below this "
                                 "[2.0]; --smoke uses the same gate")
    perf_group.add_argument("--min-compile-ratio", type=float, default=1.5,
                            help="perf: fail if the fig15-hot trace-compiled "
                                 "speedup over the event engine is below this "
                                 "[1.5]")
    perf_group.add_argument("--perf-reps", type=int, default=3, metavar="N",
                            help="perf: timed repetitions per fast engine; "
                                 "the minimum wall is reported [3]")
    perf_group.add_argument("--workloads", default="",
                            help="perf: comma-separated workload subset "
                                 "(litmus,fig15-hot,cilk_fib)")
    perf_group.add_argument("--campaign", action="store_true",
                            help="perf: benchmark campaign throughput "
                                 "(persistent pool vs --fork-per-job) instead "
                                 "of simulator engines")
    perf_group.add_argument("--campaign-out", default="BENCH_campaign.json",
                            metavar="FILE",
                            help="perf --campaign: report path "
                                 "[BENCH_campaign.json]")
    perf_group.add_argument("--min-jobs-ratio", type=float, default=None,
                            metavar="R",
                            help="perf --campaign: fail if the persistent "
                                 "pool's cold-sweep speedup over fork-per-job "
                                 "is below R [1.1]")
    ns = parser.parse_args(argv)
    _resolve_parallel(ns)

    if ns.command == "litmus":
        if not ns.args:
            parser.error("litmus requires a file argument")
        backend = _single_backend(ns)
        if backend is None:
            return 2
        return cmd_litmus(ns.args[0], ns.model, dense_loop=ns.dense_loop,
                          mem_backend=backend, trace_compile=ns.trace_compile)
    if ns.command == "chaos":
        return cmd_chaos(ns)
    if ns.command == "campaign":
        if ns.chaos_infra is not None:
            return cmd_campaign_resilience(ns)
        return cmd_campaign(ns)
    if ns.command == "perf":
        return cmd_perf(ns)
    if ns.command == "verify":
        return cmd_verify(ns)
    if ns.command == "synth":
        return cmd_synth(ns)
    if ns.command == "hwcost":
        return cmd_hwcost(ns)
    return cmd_figure(ns.command, ns)


if __name__ == "__main__":
    sys.exit(main())
