"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``fig12`` / ``fig13`` / ``fig14`` / ``fig15`` / ``fig16`` — rerun one
  of the paper's figures and print the comparison table.
* ``hwcost`` — print the Section VI-E hardware bill of materials.
* ``litmus <file>`` — run a textual litmus test (see
  :mod:`repro.litmus.dsl`) and report the observed outcomes.
* ``chaos`` — fault-injection sweep over the lock-free algorithm suite
  with ordering-invariant checking (see :mod:`repro.chaos`); exits
  non-zero if any case fails.

The figure commands are thin wrappers over the same drivers the
pytest-benchmark targets use; ``--scale`` shrinks or grows workloads.
"""

from __future__ import annotations

import argparse
import sys

from .analysis.report import format_table
from .analysis.speedup import measure, normalized_series
from .core.hwcost import estimate_cost
from .isa.instructions import FenceKind
from .runtime.lang import Env
from .sim.config import MemoryModel, SimConfig


def _scaled(n: int, scale: float) -> int:
    return max(2, int(round(n * scale)))


def cmd_fig12(scale: float) -> None:
    from .algorithms.dekker import build_workload as dekker
    from .algorithms.workloads import (
        build_harris_workload,
        build_msn_workload,
        build_wsq_workload,
    )

    builders = {
        "dekker": lambda env, lvl: dekker(env, workload_level=lvl, iterations=_scaled(25, scale)),
        "wsq": lambda env, lvl: build_wsq_workload(env, workload_level=lvl, iterations=_scaled(30, scale)),
        "msn": lambda env, lvl: build_msn_workload(env, workload_level=lvl, iterations=_scaled(15, scale)),
        "harris": lambda env, lvl: build_harris_workload(env, workload_level=lvl, iterations=_scaled(15, scale)),
    }
    rows = []
    for name, build in builders.items():
        curve = []
        for level in range(1, 7):
            cycles = {}
            for scoped in (False, True):
                env = Env(SimConfig(scoped_fences=scoped))
                handle = build(env, level)
                res = env.run(handle.program)
                handle.check()
                cycles[scoped] = res.cycles
            curve.append(cycles[False] / cycles[True])
        rows.append((name, " ".join(f"{s:.3f}" for s in curve), f"{max(curve):.2f}x"))
    print(format_table(["benchmark", "speedup @ workload 1..6", "peak"], rows,
                       title="Figure 12 -- impact of workload"))


def _app_builders(scale: float):
    from .apps.barnes import build_barnes
    from .apps.pst import build_pst
    from .apps.ptc import build_ptc
    from .apps.radiosity import build_radiosity

    return {
        "pst": (lambda env, k: build_pst(env, scope=k, n_vertices=_scaled(160, scale)), FenceKind.CLASS),
        "ptc": (lambda env, k: build_ptc(env, scope=k, n_vertices=_scaled(48, min(scale, 1.3))), FenceKind.CLASS),
        "barnes": (lambda env, k: build_barnes(env, scope=k, n_bodies=_scaled(192, scale)), FenceKind.SET),
        "radiosity": (lambda env, k: build_radiosity(env, scope=k, n_patches=_scaled(128, scale)), FenceKind.SET),
    }


def cmd_fig13(scale: float) -> None:
    rows = []
    for name, (builder, kind) in _app_builders(scale).items():
        points = []
        for label, scope, spec in (
            ("T", FenceKind.GLOBAL, False),
            ("S", kind, False),
            ("T+", FenceKind.GLOBAL, True),
            ("S+", kind, True),
        ):
            points.append(measure(
                lambda env: builder(env, scope),
                SimConfig(in_window_speculation=spec),
                label=label,
            ))
        for s in normalized_series(points, points[0]):
            rows.append((name, s["label"], s["normalized_time"], s["fence_stalls"], s["others"]))
    print(format_table(["app", "config", "normalized", "fence stalls", "others"], rows,
                       title="Figure 13 -- normalized execution time"))


def cmd_fig14(scale: float) -> None:
    from .algorithms.workloads import build_harris_workload, build_msn_workload
    from .apps.pst import build_pst
    from .apps.ptc import build_ptc

    builders = {
        "msn": lambda env, k: build_msn_workload(env, scope=k, iterations=_scaled(12, scale), workload_level=2),
        "harris": lambda env, k: build_harris_workload(env, scope=k, iterations=_scaled(12, scale), workload_level=2),
        "pst": lambda env, k: build_pst(env, scope=k, n_vertices=_scaled(128, scale)),
        "ptc": lambda env, k: build_ptc(env, scope=k, n_vertices=_scaled(48, min(scale, 1.3))),
    }
    rows = []
    for name, builder in builders.items():
        cs = measure(lambda env: builder(env, FenceKind.CLASS), SimConfig(), "C.S.")
        ss = measure(lambda env: builder(env, FenceKind.SET), SimConfig(), "S.S.")
        rows.append((name, cs.cycles, ss.cycles, f"{ss.cycles / cs.cycles:.3f}"))
    print(format_table(["benchmark", "class scope", "set scope", "set/class"], rows,
                       title="Figure 14 -- class vs set scope"))


def _sweep(scale: float, field: str, values: list[int], title: str) -> None:
    rows = []
    for name, (builder, kind) in _app_builders(scale).items():
        speedups = []
        for value in values:
            cfg = SimConfig(**{field: value})
            t = measure(lambda env: builder(env, FenceKind.GLOBAL), cfg, "T")
            s = measure(lambda env: builder(env, kind), cfg, "S")
            speedups.append(t.cycles / s.cycles)
        rows.append((name, " ".join(f"{x:.3f}" for x in speedups)))
    print(format_table(["app", f"S-Fence speedup @ {field} {values}"], rows, title=title))


def cmd_fig15(scale: float) -> None:
    _sweep(scale, "mem_latency", [200, 300, 500], "Figure 15 -- varying memory latency")


def cmd_fig16(scale: float) -> None:
    _sweep(scale, "rob_size", [64, 128, 256], "Figure 16 -- varying ROB size")


def cmd_hwcost(_: float) -> None:
    cost = estimate_cost(SimConfig())
    print(format_table(
        ["structure", "bits"],
        [
            ("FSB (ROB)", cost.fsb_rob_bits),
            ("FSB (SB)", cost.fsb_sb_bits),
            ("mapping table", cost.mapping_table_bits),
            ("FSS + FSS'", cost.fss_bits + cost.shadow_fss_bits),
            ("overflow counter", cost.overflow_counter_bits),
            ("total", f"{cost.total_bits} ({cost.total_bytes:.1f} bytes)"),
        ],
        title="Section VI-E -- hardware cost per core",
    ))


def cmd_litmus(path: str, model_name: str) -> int:
    from .litmus.dsl import LitmusParseError, parse_litmus, run_litmus

    try:
        with open(path) as fh:
            source = fh.read()
    except OSError as exc:
        print(f"litmus: cannot read {path}: {exc.strerror or exc}", file=sys.stderr)
        return 2
    try:
        # statement parsing is partly lazy (thread bodies are parsed as
        # the guest generators execute), so run under the same guard
        test = parse_litmus(source)
        run = run_litmus(test, MemoryModel(model_name))
    except LitmusParseError as exc:
        print(f"litmus: {path}: {exc}", file=sys.stderr)
        return 2
    print(f"litmus {test.name} under {model_name}:")
    print(f"  registers: {run.register_names}")
    for outcome in sorted(run.outcomes, key=str):
        print(f"  observed: {outcome}")
    if test.condition:
        verdict = "OBSERVED" if run.condition_observed else "never observed"
        print(f"  exists {test.condition}: {verdict}")
    return 0


def cmd_chaos(ns) -> int:
    from .chaos.runner import ALGORITHMS, SCENARIOS, sweep

    algos = ns.algos.split(",") if ns.algos else None
    scenarios = ns.scenarios.split(",") if ns.scenarios else None
    n_seeds = ns.seeds
    if n_seeds is None:
        n_seeds = 2 if ns.smoke else 20
    try:
        reports = sweep(
            algos=algos,
            scenarios=scenarios,
            n_seeds=n_seeds,
            seed_base=ns.seed_base,
            base_budget=ns.budget,
        )
    except KeyError as exc:
        print(f"chaos: {exc.args[0]}", file=sys.stderr)
        return 2

    # aggregate per (scenario, algorithm) across seeds
    rows = []
    for scenario in scenarios or list(SCENARIOS):
        for algo in algos or list(ALGORITHMS):
            cell = [r for r in reports if r.scenario == scenario and r.algo == algo]
            if not cell:
                continue
            n_ok = sum(1 for r in cell if r.ok)
            injected = sum(sum(r.injected.values()) for r in cell)
            rows.append((
                scenario, algo, f"{n_ok}/{len(cell)}",
                sum(r.fences_checked for r in cell),
                sum(r.violations for r in cell),
                injected,
            ))
    print(format_table(
        ["scenario", "algo", "ok", "fences checked", "violations", "faults injected"],
        rows,
        title=f"chaos sweep -- {n_seeds} seed(s) from {ns.seed_base}",
    ))
    failures = [r for r in reports if not r.ok]
    for r in failures:
        print(f"\nFAIL {r.algo}/{r.scenario} seed={r.seed} scope={r.scope}: {r.status}")
        if r.detail:
            print(r.detail)
    if failures:
        print(f"\n{len(failures)}/{len(reports)} case(s) failed", file=sys.stderr)
        return 1
    print(f"\nall {len(reports)} cases passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Fence Scoping (SC'14) reproduction driver",
    )
    parser.add_argument(
        "command",
        choices=["fig12", "fig13", "fig14", "fig15", "fig16", "hwcost", "litmus", "chaos"],
    )
    parser.add_argument("args", nargs="*", help="litmus: <file>")
    parser.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    parser.add_argument("--model", default="rmo", help="litmus: memory model (sc/tso/pso/rmo)")
    chaos_group = parser.add_argument_group("chaos options")
    chaos_group.add_argument("--seeds", type=int, default=None,
                             help="chaos: seeds per (scenario, algo) cell [20; --smoke: 2]")
    chaos_group.add_argument("--seed-base", type=int, default=0,
                             help="chaos: first seed of the sweep")
    chaos_group.add_argument("--algos", default="",
                             help="chaos: comma-separated algorithm subset")
    chaos_group.add_argument("--scenarios", default="",
                             help="chaos: comma-separated scenario subset")
    chaos_group.add_argument("--budget", type=int, default=400_000,
                             help="chaos: base cycle budget before escalation")
    chaos_group.add_argument("--smoke", action="store_true",
                             help="chaos: quick CI sweep (2 seeds)")
    ns = parser.parse_args(argv)

    if ns.command == "litmus":
        if not ns.args:
            parser.error("litmus requires a file argument")
        return cmd_litmus(ns.args[0], ns.model)
    if ns.command == "chaos":
        return cmd_chaos(ns)
    {
        "fig12": cmd_fig12,
        "fig13": cmd_fig13,
        "fig14": cmd_fig14,
        "fig15": cmd_fig15,
        "fig16": cmd_fig16,
        "hwcost": cmd_hwcost,
    }[ns.command](ns.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
