"""Harris's lock-free sorted linked-list set (``harris`` in Table IV).

A concurrent set as a sorted singly linked list with logically deleted
("marked") nodes; the mark lives in the low bit of the ``next`` field
(here: ``next = node_index * 2 + mark``).  ``_search`` physically
unlinks marked chains it encounters, exactly as in Harris's paper.

The store-store fence in ``insert`` orders node initialisation before
the publishing CAS; the load-load fence in ``_search`` orders pointer
loads before dereferencing them under RMO.  Both are class-scope
S-Fence candidates.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_LOADS, WAIT_STORES
from ..runtime.harness import FencePlan
from ..runtime.lang import Env, ScopedStructure, scoped_method

NULL = 0


def _mk(node: int, mark: int) -> int:
    return node * 2 + mark


def _is_marked(ref: int) -> bool:
    return bool(ref & 1)


def _ptr(ref: int) -> int:
    return ref >> 1


class HarrisSet(ScopedStructure):
    """Sorted-list set with marked-pointer deletion."""

    def __init__(
        self,
        env: Env,
        name: str = "harris",
        pool_size: int = 4096,
        scope: FenceKind = FenceKind.CLASS,
        use_fences: bool = True,
        fence_plan: FencePlan | None = None,
    ) -> None:
        super().__init__(env, name, scope)
        if pool_size < 3:
            raise ValueError("pool_size must hold the two sentinels")
        self.pool_size = pool_size
        self.key = self.sarray("key", pool_size)
        self.nxt = self.sarray("next", pool_size)
        self.use_fences = use_fences
        self.plan = fence_plan if fence_plan is not None else (
            FencePlan.hand() if use_fences else FencePlan.none())
        self.HEAD = 1
        self.TAIL = 2
        self._next_free = 3
        self.nxt.poke(self.HEAD, _mk(self.TAIL, 0))
        self.nxt.poke(self.TAIL, _mk(NULL, 0))
        self.init_opstats()

    def _alloc(self) -> int:
        n = self._next_free
        if n >= self.pool_size:
            raise MemoryError(f"{self.name}: node pool exhausted")
        self._next_free = n + 1
        return n

    def _fence(self, slot: str, waits: int):
        return self.plan.fence(slot, self.scope, waits)

    @scoped_method
    def _search(self, search_key: int):
        """Find adjacent (left, right) with ``right.key >= search_key``.

        Returns ``(left, left_next_ref, right)``; snips marked chains.
        """
        while True:
            # order earlier (possibly in-flight) loads before starting a
            # fresh traversal from the head -- the published RMO fence
            # placement for list search (independent loads)
            yield from self._fence("search.restart", WAIT_LOADS)
            t = self.HEAD
            t_next = yield self.nxt.load(t)
            left = t
            left_next = t_next
            # phase 1: locate left and right nodes
            while True:
                if not _is_marked(t_next):
                    left = t
                    left_next = t_next
                t = _ptr(t_next)
                if t == self.TAIL:
                    break
                # NOTE: this dereference is *data-dependent* on the
                # previous load (address dependency), which RMO-class
                # models order without a fence; no fence is needed here.
                t_next = yield self.nxt.load(t)
                t_key = yield self.key.load(t)
                if not (_is_marked(t_next) or t_key < search_key):
                    break
            right = t
            # phase 2: adjacent?
            if _ptr(left_next) == right:
                if right != self.TAIL:
                    r_next = yield self.nxt.load(right)
                    if _is_marked(r_next):
                        continue
                return left, left_next, right
            # phase 3: snip the marked chain between left and right
            ok = yield self.nxt.cas(left, left_next, _mk(right, 0))
            if ok:
                if right != self.TAIL:
                    r_next = yield self.nxt.load(right)
                    if _is_marked(r_next):
                        continue
                return left, _mk(right, 0), right

    @scoped_method
    def insert(self, key: int):
        """Add ``key``; False if already present."""
        yield self.note_op()
        node = self._alloc()
        yield self.key.store(node, key)
        while True:
            left, left_next, right = yield from self._search(key)
            if right != self.TAIL:
                r_key = yield self.key.load(right)
                if r_key == key:
                    return False
            yield self.nxt.store(node, _mk(right, 0))
            yield from self._fence("insert.publish", WAIT_STORES)  # init before publication
            ok = yield self.nxt.cas(left, _mk(right, 0), _mk(node, 0))
            if ok:
                return True

    @scoped_method
    def delete(self, key: int):
        """Remove ``key``; False if absent."""
        yield self.note_op()
        while True:
            left, left_next, right = yield from self._search(key)
            if right == self.TAIL:
                return False
            r_key = yield self.key.load(right)
            if r_key != key:
                return False
            r_next = yield self.nxt.load(right)
            if _is_marked(r_next):
                continue
            ok = yield self.nxt.cas(right, r_next, r_next | 1)  # logical delete
            if ok:
                # attempt physical unlink; fall back to a cleanup search
                ok2 = yield self.nxt.cas(left, _mk(right, 0), r_next)
                if not ok2:
                    yield from self._search(key)
                return True

    @scoped_method
    def contains(self, key: int):
        """Membership test."""
        yield self.note_op()
        _, _, right = yield from self._search(key)
        if right == self.TAIL:
            return False
        r_key = yield self.key.load(right)
        return r_key == key

    # host helpers --------------------------------------------------------------
    def keys_host(self) -> list[int]:
        """Unmarked keys in list order, from globally visible memory."""
        out = []
        ref = self.nxt.peek(self.HEAD)
        node = _ptr(ref)
        while node != self.TAIL:
            nref = self.nxt.peek(node)
            if not _is_marked(nref):
                out.append(self.key.peek(node))
            node = _ptr(nref)
        return out
