"""Idempotent work stealing (Michael, Vechev & Saraswat, PPoPP'09).

The paper's related work (Section VII, [34]) describes a *different*
road to cheap work stealing: relax the deque's semantics so tasks may
be extracted more than once ("idempotent work stealing") and the
expensive store-load fence in ``take`` disappears altogether.  S-Fence
instead keeps exactly-once semantics and makes the fence cheap; the
two are complementary, and `benchmarks/bench_idempotent.py` compares
them head-to-head on the spanning-tree workload.

This is the idempotent **LIFO** extraction variant: the deque state is
one *anchor* word packing ``(size, tag)``; the owner's ``put`` writes
the task and then plainly overwrites the anchor (no CAS), while
extractors CAS the anchor down.  An anchor overwrite can cancel a
concurrent extraction's CAS, which resurrects the extracted task --
hence at-least-once delivery, and hence *idempotent* tasks only.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_STORES
from ..runtime.lang import Env, ScopedStructure, scoped_method

EMPTY = -1

_TAG_SHIFT = 24
_SIZE_MASK = (1 << _TAG_SHIFT) - 1


def _anchor(size: int, tag: int) -> int:
    return (tag << _TAG_SHIFT) | size


def _unpack(anchor: int) -> tuple[int, int]:
    return anchor & _SIZE_MASK, anchor >> _TAG_SHIFT


class IdempotentLifo(ScopedStructure):
    """Idempotent LIFO work-stealing pool (at-least-once extraction)."""

    def __init__(
        self,
        env: Env,
        name: str = "iwsq",
        capacity: int = 1024,
        scope: FenceKind = FenceKind.CLASS,
    ) -> None:
        super().__init__(env, name, scope)
        if capacity < 1 or capacity > _SIZE_MASK:
            raise ValueError("capacity out of range")
        self.capacity = capacity
        self.anchor = self.svar("ANCHOR")
        self.arr = self.sarray("tasks", capacity)

    @scoped_method
    def put(self, task: int):
        """Owner only: push a task (needs just a store-store fence)."""
        size, tag = _unpack((yield self.anchor.load()))
        if size >= self.capacity:
            raise MemoryError(f"{self.name}: pool full")
        yield self.arr.store(size, task)
        # publication order: the task must be visible before the anchor
        yield self.fence(WAIT_STORES)
        yield self.anchor.store(_anchor(size + 1, (tag + 1) & 0xFF))

    @scoped_method
    def extract(self):
        """Owner take and thief steal are the same code: NO fence.

        The anchor CAS may be overwritten by a concurrent ``put``'s
        plain anchor store, resurrecting this task for someone else --
        the at-least-once relaxation that buys the fence away.
        """
        a = yield self.anchor.load()
        size, tag = _unpack(a)
        if size == 0:
            return EMPTY
        task = yield self.arr.load(size - 1)
        ok = yield self.anchor.cas(a, _anchor(size - 1, tag))
        if not ok:
            return EMPTY
        return task

    # the owner's take and a thief's steal share the extraction path
    take = extract
    steal = extract

    # host helpers --------------------------------------------------------------
    def snapshot(self) -> tuple[int, int]:
        return _unpack(self.anchor.peek())
