"""Treiber lock-free stack (extension benchmark; not in Table IV).

Included because it is the smallest CAS-based lock-free structure with
a publication fence: ``push`` initialises the node (value + next) and
must order those stores before the CAS that makes the node the new top.
Class scope applies to that fence exactly as in the paper's queue
examples.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_STORES
from ..runtime.lang import Env, ScopedStructure, scoped_method

EMPTY = -1
NULL = 0


class TreiberStack(ScopedStructure):
    """LIFO stack over a preallocated node pool (no reclamation)."""

    def __init__(
        self,
        env: Env,
        name: str = "treiber",
        pool_size: int = 4096,
        scope: FenceKind = FenceKind.CLASS,
        use_fences: bool = True,
    ) -> None:
        super().__init__(env, name, scope)
        self.pool_size = pool_size
        self.val = self.sarray("val", pool_size)
        self.nxt = self.sarray("next", pool_size)
        self.top = self.svar("TOP")
        self.use_fences = use_fences
        self._next_free = 1  # 0 = null

    def _alloc(self) -> int:
        n = self._next_free
        if n >= self.pool_size:
            raise MemoryError(f"{self.name}: node pool exhausted")
        self._next_free = n + 1
        return n

    def _fence(self, waits: int):
        if self.use_fences:
            yield self.fence(waits)

    @scoped_method
    def push(self, value: int):
        """Push ``value`` onto the stack."""
        n = self._alloc()
        yield self.val.store(n, value)
        while True:
            top = yield self.top.load()
            yield self.nxt.store(n, top)
            yield from self._fence(WAIT_STORES)  # node init before publication
            ok = yield self.top.cas(top, n)
            if ok:
                return

    @scoped_method
    def pop(self):
        """Pop the newest value, or ``EMPTY``."""
        while True:
            top = yield self.top.load()
            if top == NULL:
                return EMPTY
            nxt = yield self.nxt.load(top)
            value = yield self.val.load(top)
            ok = yield self.top.cas(top, nxt)
            if ok:
                return value

    # host helpers --------------------------------------------------------------
    def values_host(self) -> list[int]:
        """Top-to-bottom values from globally visible memory."""
        out = []
        node = self.top.peek()
        while node != NULL:
            out.append(self.val.peek(node))
            node = self.nxt.peek(node)
        return out
