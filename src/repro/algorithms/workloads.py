"""Section VI-A harness programs for the lock-free algorithms.

Each ``build_*_workload`` returns a :class:`WorkloadHandle`: the guest
program (lock-free ops interleaved with :class:`PrivateWork` at a given
*workload level*) plus a ``check`` callable that validates the
algorithm's safety invariants from the host-visible final state and the
operation log the guests recorded.  The checkers are what lets the test
suite demonstrate that (a) the algorithms are correct under the relaxed
simulator *with* their fences -- traditional or scoped -- and (b) they
genuinely break without them.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..isa.instructions import FenceKind
from ..isa.program import Program
from ..runtime.harness import PrivateWork
from ..runtime.lang import Env
from . import chase_lev, harris_set, ms_queue, treiber_stack
from .chase_lev import WorkStealingDeque
from .harris_set import HarrisSet
from .lamport_queue import LamportQueue
from .ms_queue import MichaelScottQueue
from .treiber_stack import TreiberStack


@dataclass
class WorkloadHandle:
    """A runnable harness plus its safety checker."""

    program: Program
    check: Callable[[], None]
    meta: dict = field(default_factory=dict)


# --------------------------------------------------------------------------- wsq
def build_wsq_workload(
    env: Env,
    scope: FenceKind = FenceKind.CLASS,
    iterations: int = 40,
    workload_level: int = 1,
    n_threads: int = 8,
    use_fences: bool = True,
    emit_branches: bool = False,
    fence_plan=None,
) -> WorkloadHandle:
    """Owner puts/takes, thieves steal (the paper's motivating pattern)."""
    deque = WorkStealingDeque(
        env, capacity=2 * iterations + 4, scope=scope, use_fences=use_fences,
        fence_plan=fence_plan,
    )
    done = env.var("wsq.done")
    puts: list[int] = []
    extracted: list[tuple[object, int]] = []
    works = [
        PrivateWork(env, tid, workload_level, name="wsq.priv",
                    emit_branches=emit_branches)
        for tid in range(n_threads)
    ]

    def owner(tid: int):
        work = works[tid]
        task = 1
        for i in range(iterations):
            puts.append(task)
            yield from deque.put(task)
            task += 1
            yield from work.emit(i)
            got = yield from deque.take()
            if got >= 0:
                extracted.append(("owner", got))
            yield from work.emit(i)
        while True:  # drain what thieves left behind
            got = yield from deque.take()
            if got < 0:
                break
            extracted.append(("owner", got))
        yield done.store(1)

    def thief(tid: int):
        work = works[tid]
        while True:
            if (yield done.load()):
                break
            got = yield from deque.steal()
            if got >= 0:
                extracted.append((tid, got))
            yield from work.emit(tid)

    def check() -> None:
        got = [t for _, t in extracted]
        dup = [t for t, n in Counter(got).items() if n > 1]
        assert not dup, f"wsq: tasks extracted more than once: {dup[:5]}"
        phantom = set(got) - set(puts)
        assert not phantom, f"wsq: phantom tasks extracted: {sorted(phantom)[:5]}"
        if use_fences:
            head, tail = deque.snapshot()
            remaining = max(0, tail - head)
            assert len(got) + remaining == len(puts), (
                f"wsq: lost tasks ({len(got)} extracted + {remaining} queued "
                f"!= {len(puts)} put)"
            )

    fns = [owner] + [thief] * (n_threads - 1)
    return WorkloadHandle(
        Program(fns, name="wsq"),
        check,
        meta={"puts": puts, "extracted": extracted, "structure": deque},
    )


# --------------------------------------------------------------------------- msn
def build_msn_workload(
    env: Env,
    scope: FenceKind = FenceKind.CLASS,
    iterations: int = 20,
    workload_level: int = 1,
    n_threads: int = 8,
    use_fences: bool = True,
    emit_branches: bool = False,
) -> WorkloadHandle:
    """All threads enqueue and dequeue on one shared MS queue."""
    queue = MichaelScottQueue(
        env,
        pool_size=n_threads * iterations + 8,
        scope=scope,
        use_fences=use_fences,
    )
    enqueued: list[int] = []
    dequeued: list[int] = []
    works = [
        PrivateWork(env, tid, workload_level, name="msn.priv",
                    emit_branches=emit_branches)
        for tid in range(n_threads)
    ]

    def worker(tid: int):
        work = works[tid]
        for i in range(iterations):
            value = tid * 100_000 + i + 1
            enqueued.append(value)
            yield from queue.enqueue(value)
            yield from work.emit(i)
            got = yield from queue.dequeue()
            if got != ms_queue.EMPTY:
                dequeued.append(got)
            yield from work.emit(i)

    def check() -> None:
        dup = [v for v, n in Counter(dequeued).items() if n > 1]
        assert not dup, f"msn: values dequeued more than once: {dup[:5]}"
        phantom = set(dequeued) - set(enqueued)
        assert not phantom, f"msn: phantom values: {sorted(phantom)[:5]}"
        if use_fences:
            remaining = queue.drain_host()
            assert Counter(dequeued) + Counter(remaining) == Counter(enqueued), (
                "msn: enqueue/dequeue accounting mismatch"
            )

    return WorkloadHandle(
        Program([worker] * n_threads, name="msn"),
        check,
        meta={"enqueued": enqueued, "dequeued": dequeued, "structure": queue},
    )


# ------------------------------------------------------------------------- harris
def build_harris_workload(
    env: Env,
    scope: FenceKind = FenceKind.CLASS,
    iterations: int = 20,
    workload_level: int = 1,
    n_threads: int = 8,
    key_space: int = 16,
    seed: int = 7,
    use_fences: bool = True,
    emit_branches: bool = False,
    fence_plan=None,
) -> WorkloadHandle:
    """Random inserts/deletes/lookups over a small contended key space."""
    sset = HarrisSet(
        env,
        pool_size=n_threads * iterations + 8,
        scope=scope,
        use_fences=use_fences,
        fence_plan=fence_plan,
    )
    # per-key counts of *successful* inserts and deletes (guest-reported)
    ins_ok: Counter = Counter()
    del_ok: Counter = Counter()
    works = [
        PrivateWork(env, tid, workload_level, name="harris.priv",
                    emit_branches=emit_branches)
        for tid in range(n_threads)
    ]

    def worker(tid: int):
        rng = random.Random(seed + tid)
        work = works[tid]
        for i in range(iterations):
            key = rng.randrange(key_space)
            dice = rng.random()
            if dice < 0.45:
                ok = yield from sset.insert(key)
                if ok:
                    ins_ok[key] += 1
            elif dice < 0.9:
                ok = yield from sset.delete(key)
                if ok:
                    del_ok[key] += 1
            else:
                yield from sset.contains(key)
            yield from work.emit(i)

    def check() -> None:
        keys = sset.keys_host()
        assert keys == sorted(set(keys)), f"harris: list not sorted/unique: {keys}"
        if use_fences:
            present = set(keys)
            for key in set(ins_ok) | set(del_ok):
                balance = ins_ok[key] - del_ok[key]
                expect = 1 if key in present else 0
                assert balance == expect, (
                    f"harris: key {key}: {ins_ok[key]} inserts - "
                    f"{del_ok[key]} deletes = {balance}, final presence {expect}"
                )
            stray = present - set(ins_ok)
            assert not stray, f"harris: keys never inserted: {sorted(stray)}"

    return WorkloadHandle(
        Program([worker] * n_threads, name="harris"),
        check,
        meta={"structure": sset, "ins_ok": ins_ok, "del_ok": del_ok},
    )


# ------------------------------------------------------------------ treiber
def build_treiber_workload(
    env: Env,
    scope: FenceKind = FenceKind.CLASS,
    iterations: int = 20,
    workload_level: int = 1,
    n_threads: int = 8,
    use_fences: bool = True,
    emit_branches: bool = False,
) -> WorkloadHandle:
    """All threads push/pop on one shared Treiber stack (extension)."""
    stack = TreiberStack(
        env,
        pool_size=n_threads * iterations + 8,
        scope=scope,
        use_fences=use_fences,
    )
    pushed: list[int] = []
    popped: list[int] = []
    works = [
        PrivateWork(env, tid, workload_level, name="treiber.priv",
                    emit_branches=emit_branches)
        for tid in range(n_threads)
    ]

    def worker(tid: int):
        work = works[tid]
        for i in range(iterations):
            value = tid * 100_000 + i + 1
            pushed.append(value)
            yield from stack.push(value)
            yield from work.emit(i)
            got = yield from stack.pop()
            if got != treiber_stack.EMPTY:
                popped.append(got)
            yield from work.emit(i)

    def check() -> None:
        dup = [v for v, n in Counter(popped).items() if n > 1]
        assert not dup, f"treiber: values popped more than once: {dup[:5]}"
        phantom = set(popped) - set(pushed)
        assert not phantom, f"treiber: phantom values: {sorted(phantom)[:5]}"
        if use_fences:
            remaining = stack.values_host()
            assert Counter(popped) + Counter(remaining) == Counter(pushed), (
                "treiber: push/pop accounting mismatch"
            )

    return WorkloadHandle(
        Program([worker] * n_threads, name="treiber"),
        check,
        meta={"pushed": pushed, "popped": popped, "structure": stack},
    )


# ------------------------------------------------------------------ lamport
def build_lamport_workload(
    env: Env,
    scope: FenceKind = FenceKind.CLASS,
    iterations: int = 40,
    workload_level: int = 1,
    capacity: int = 16,
    use_fences: bool = True,
    emit_branches: bool = False,
) -> WorkloadHandle:
    """One producer, one consumer over a Lamport SPSC ring (extension)."""
    queue = LamportQueue(env, capacity=capacity, scope=scope, use_fences=use_fences)
    consumed: list[int] = []
    works = [
        PrivateWork(env, tid, workload_level, name="lamport.priv",
                    emit_branches=emit_branches)
        for tid in (0, 1)
    ]

    def producer(tid: int):
        work = works[0]
        sent = 0
        while sent < iterations:
            ok = yield from queue.enqueue(sent + 1)
            if ok:
                sent += 1
                yield from work.emit(sent)

    def consumer(tid: int):
        from .lamport_queue import EMPTY

        work = works[1]
        while len(consumed) < iterations:
            got = yield from queue.dequeue()
            if got != EMPTY:
                consumed.append(got)
                yield from work.emit(got)

    def check() -> None:
        assert consumed == list(range(1, iterations + 1)), (
            f"lamport: FIFO order broken around {consumed[:8]}..."
        )

    return WorkloadHandle(
        Program([producer, consumer], name="lamport"),
        check,
        meta={"consumed": consumed, "structure": queue},
    )
