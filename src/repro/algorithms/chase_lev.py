"""Chase-Lev work-stealing deque (Figure 2; class scope).

A lock-free deque over a cyclic array.  The owner thread ``put``s and
``take``s at the tail; thieves ``steal`` from the head.  Under PSO/RMO
two fences are required (Section II-B):

* a store-store fence in ``put`` between writing the task into the
  array and publishing the new ``TAIL`` (prevents *phantom tasks*:
  a thief reading a stale array slot), and
* a store-load fence in ``take`` between the ``TAIL`` decrement and the
  ``HEAD`` read (prevents the same task being returned twice).

With class scope the fences only wait for accesses to the deque's own
data (``HEAD``/``TAIL``/``wsq``), not for the application's long-latency
accesses -- the paper's motivating example.

This implementation follows the paper's simplified listing: fixed-size
cyclic array (callers size it for their workload), task values are
positive ints, ``EMPTY``/``ABORT`` are negative sentinels.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_STORES
from ..runtime.harness import FencePlan
from ..runtime.lang import Env, ScopedStructure, scoped_method

EMPTY = -1
ABORT = -2


class WorkStealingDeque(ScopedStructure):
    """The paper's simplified Chase-Lev deque (Figure 2)."""

    def __init__(
        self,
        env: Env,
        name: str = "wsq",
        capacity: int = 1024,
        scope: FenceKind = FenceKind.CLASS,
        use_fences: bool = True,
        fence_plan: FencePlan | None = None,
    ) -> None:
        super().__init__(env, name, scope)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.head = self.svar("HEAD")
        self.tail = self.svar("TAIL")
        self.arr = self.sarray("wsq", capacity)
        self.use_fences = use_fences
        self.plan = fence_plan if fence_plan is not None else (
            FencePlan.hand() if use_fences else FencePlan.none())
        self.init_opstats()

    def _fence(self, slot: str, waits: int, speculable: bool = True):
        """The algorithm's fence at a named slot, per the active plan."""
        return self.plan.fence(slot, self.scope, waits, speculable)

    @scoped_method
    def put(self, task: int):
        """Owner: push ``task`` at the tail (Figure 2 lines 1-6)."""
        yield self.note_op()
        tail = yield self.tail.load()
        yield self.arr.store(tail % self.capacity, task)
        yield from self._fence("put.publish", WAIT_STORES)  # storestore
        yield self.tail.store(tail + 1)

    @scoped_method
    def take(self):
        """Owner: pop from the tail (Figure 2 lines 7-25)."""
        yield self.note_op()
        tail = (yield self.tail.load()) - 1
        yield self.tail.store(tail)
        # storeload fence: the HEAD read below guards a non-CAS-protected
        # take (the tail > head fast path), so it may not be speculated
        # in this simulator (no load replay; see Fence.speculable)
        yield from self._fence("take.reserve", WAIT_STORES, speculable=False)
        head = yield self.head.load()
        if tail < head:
            yield self.tail.store(head)
            return EMPTY
        task = yield self.arr.load(tail % self.capacity)
        if tail > head:
            return task
        # last element: race with thieves for it
        yield self.tail.store(head + 1)
        ok = yield self.head.cas(head, head + 1)
        if not ok:
            return EMPTY
        return task

    @scoped_method
    def steal(self):
        """Thief: pop from the head (Figure 2 lines 26-36)."""
        yield self.note_op()
        head = yield self.head.load()
        tail = yield self.tail.load()
        if head >= tail:
            return EMPTY
        task = yield self.arr.load(head % self.capacity)
        ok = yield self.head.cas(head, head + 1)
        if not ok:
            return ABORT
        return task

    # host helpers --------------------------------------------------------------
    def snapshot(self) -> tuple[int, int]:
        """(HEAD, TAIL) as globally visible (for end-of-run checks)."""
        return self.head.peek(), self.tail.peek()
