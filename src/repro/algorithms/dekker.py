"""Dekker's mutual-exclusion algorithm (set scope; Figure 11 / Table IV).

The fences after the ``flag`` store and before reading the peer's flag
are only meant to order the accesses to ``flag0``/``flag1``/``turn``;
accesses outside the algorithm (e.g. a long-latency private store
before ``lock``) need not be ordered, so the paper specifies them as
``S-FENCE[set, {flag0, flag1}]``.

Mutual exclusion is validated with host-side probes: each thread bumps
an occupancy counter on critical-section entry/exit and the harness
asserts it never exceeds one.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, Probe, WAIT_BOTH, WAIT_STORES
from ..isa.program import Program
from ..runtime.harness import PrivateWork
from ..runtime.lang import Env, ScopedStructure


class DekkerLock(ScopedStructure):
    """Two-thread Dekker lock with scoped fences."""

    def __init__(self, env: Env, name: str = "dekker", scope: FenceKind = FenceKind.SET) -> None:
        super().__init__(env, name, scope)
        self.flag = [self.svar("flag0"), self.svar("flag1")]
        self.turn = self.svar("turn")

    def lock(self, tid: int):
        """Acquire for thread ``tid`` (0 or 1); a guest generator."""
        me, other = tid, 1 - tid
        yield self.flag[me].store(1)
        # the peer-flag read below decides mutual exclusion without a CAS
        # backstop, so the fence is modelled as non-speculable (no load
        # replay in this simulator; see Fence.speculable)
        yield self.fence(WAIT_BOTH, speculable=False)
        while (yield self.flag[other].load()) == 1:
            if (yield self.turn.load()) != me:
                yield self.flag[me].store(0)
                while (yield self.turn.load()) != me:
                    pass
                yield self.flag[me].store(1)
                yield self.fence(WAIT_BOTH, speculable=False)

    def unlock(self, tid: int):
        """Release for thread ``tid``; a guest generator."""
        yield self.fence(WAIT_STORES)  # order CS flag-protocol stores
        yield self.turn.store(1 - tid)
        yield self.flag[tid].store(0)


class MutualExclusionChecker:
    """Host-side occupancy monitor fed by guest probes."""

    def __init__(self) -> None:
        self.inside = 0
        self.max_inside = 0
        self.entries = 0

    def enter(self, cycle: int) -> None:
        self.inside += 1
        self.entries += 1
        if self.inside > self.max_inside:
            self.max_inside = self.inside

    def leave(self, cycle: int) -> None:
        self.inside -= 1

    @property
    def ok(self) -> bool:
        return self.max_inside <= 1 and self.inside == 0


def build_workload(
    env: Env,
    scope: FenceKind = FenceKind.SET,
    iterations: int = 30,
    workload_level: int = 1,
    use_fences: bool = True,
):
    """Two-thread Dekker harness; returns a ``WorkloadHandle``.

    ``use_fences=False`` drops the algorithm's fences entirely -- used
    by tests to demonstrate that the relaxed simulator really breaks
    mutual exclusion without them.
    """
    from .workloads import WorkloadHandle  # local import to avoid a cycle

    if use_fences:
        lock = DekkerLock(env, scope=scope)
    else:

        class UnfencedLock(DekkerLock):
            def fence(self, waits: int = WAIT_BOTH, speculable: bool = True):  # type: ignore[override]
                return Probe()  # placeholder op with no ordering effect

        lock = UnfencedLock(env, name="dekker_unfenced", scope=scope)
    checker = MutualExclusionChecker()
    counter = env.var("dekker.cs_counter")
    works = [
        PrivateWork(env, tid, workload_level, name="dekker.priv") for tid in (0, 1)
    ]

    def thread(tid: int):
        work = works[tid]
        for i in range(iterations):
            yield from work.emit(i)
            yield from lock.lock(tid)
            yield Probe(fn=checker.enter)
            v = yield counter.load()
            yield counter.store(v + 1)
            yield Probe(fn=checker.leave)
            yield from lock.unlock(tid)

    def check() -> None:
        assert checker.inside == 0, "dekker: unbalanced critical-section probes"
        assert checker.entries == 2 * iterations, (
            f"dekker: expected {2 * iterations} CS entries, saw {checker.entries}"
        )
        if use_fences:
            assert checker.max_inside <= 1, (
                f"dekker: mutual exclusion violated ({checker.max_inside} inside)"
            )

    return WorkloadHandle(
        Program([thread, thread], name="dekker"),
        check,
        meta={"checker": checker, "lock": lock, "counter": counter},
    )
