"""Michael-Scott non-blocking queue (``msn`` in Table IV; class scope).

Multiple-producer / multiple-consumer lock-free FIFO queue backed by a
linked list with head/tail pointers.  Nodes come from a preallocated
pool and are never recycled (runs are finite), which sidesteps ABA.

Fence placements under RMO follow the published requirements (Burckhardt
et al. / Liu et al.):

* enqueue: a store-store fence between initialising the new node and
  publishing it via the link CAS, and
* dequeue: a load-load fence between reading ``head``/``tail`` and
  dereferencing ``head.next``.

Both live inside the class, so class scope applies: they only order the
queue's own accesses.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_LOADS, WAIT_STORES
from ..runtime.lang import Env, ScopedStructure, scoped_method

EMPTY = -1

NULL = 0


class MichaelScottQueue(ScopedStructure):
    """MS queue over a preallocated node pool."""

    def __init__(
        self,
        env: Env,
        name: str = "msn",
        pool_size: int = 4096,
        scope: FenceKind = FenceKind.CLASS,
        use_fences: bool = True,
    ) -> None:
        super().__init__(env, name, scope)
        if pool_size < 2:
            raise ValueError("pool_size must hold at least the dummy node")
        self.pool_size = pool_size
        self.val = self.sarray("val", pool_size)
        self.nxt = self.sarray("next", pool_size)
        self.headp = self.svar("HEAD")
        self.tailp = self.svar("TAIL")
        self.use_fences = use_fences
        self._next_free = 2  # 0 = null, 1 = initial dummy
        self.headp.poke(1)
        self.tailp.poke(1)
        self.init_opstats()

    def _alloc(self) -> int:
        """Host-side node allocation (bump pointer; no reclamation)."""
        n = self._next_free
        if n >= self.pool_size:
            raise MemoryError(f"{self.name}: node pool exhausted")
        self._next_free = n + 1
        return n

    def _fence(self, waits: int):
        if self.use_fences:
            yield self.fence(waits)

    @scoped_method
    def enqueue(self, value: int):
        """Append ``value``; lock-free, helps a lagging tail."""
        yield self.note_op()
        n = self._alloc()
        yield self.val.store(n, value)
        yield self.nxt.store(n, NULL)
        yield from self._fence(WAIT_STORES)  # node init before publication
        while True:
            tail = yield self.tailp.load()
            nxt = yield self.nxt.load(tail)
            if nxt == NULL:
                ok = yield self.nxt.cas(tail, NULL, n)
                if ok:
                    break
            else:
                yield self.tailp.cas(tail, nxt)  # help swing the tail
        yield self.tailp.cas(tail, n)

    @scoped_method
    def dequeue(self):
        """Remove the oldest value, or ``EMPTY``."""
        yield self.note_op()
        while True:
            head = yield self.headp.load()
            tail = yield self.tailp.load()
            yield from self._fence(WAIT_LOADS)  # head/tail before next deref
            nxt = yield self.nxt.load(head)
            if head == tail:
                if nxt == NULL:
                    return EMPTY
                yield self.tailp.cas(tail, nxt)  # help swing the tail
                continue
            if nxt == NULL:
                continue  # stale head snapshot; retry
            value = yield self.val.load(nxt)
            ok = yield self.headp.cas(head, nxt)
            if ok:
                return value

    # host helpers --------------------------------------------------------------
    def drain_host(self) -> list[int]:
        """Values still queued, walking globally visible memory (checks)."""
        out = []
        node = self.nxt.peek(self.headp.peek())
        while node != NULL:
            out.append(self.val.peek(node))
            node = self.nxt.peek(node)
        return out
