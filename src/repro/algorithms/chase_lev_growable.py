"""Growable Chase-Lev deque (the paper's actual data structure).

Figure 2 shows the *simplified* Chase-Lev queue; the real one [10] is
"a lock-free dequeue using a growable cyclic array": when ``put`` finds
the array full it allocates a bigger one, copies the live window and
publishes the new array pointer.  Thieves may race with a growth --
the classic argument holds because elements are immutable once written
and the old array keeps valid data for every in-range index, so a
thief using a stale array pointer still reads the right task.

The array pointer is one shared word (``ARRAY``) holding a descriptor
index; each descriptor's base/capacity live in per-region host views.
The publication of a grown array is ordered by the same class-scope
store-store fence discipline as ``put`` itself.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_STORES
from ..runtime.lang import Env, ScopedStructure, SharedArray, scoped_method
from .chase_lev import ABORT, EMPTY


class GrowableWorkStealingDeque(ScopedStructure):
    """Chase-Lev deque over a growable cyclic array."""

    def __init__(
        self,
        env: Env,
        name: str = "gwsq",
        initial_capacity: int = 8,
        scope: FenceKind = FenceKind.CLASS,
        max_regions: int = 8,
    ) -> None:
        super().__init__(env, name, scope)
        if initial_capacity < 2:
            raise ValueError("initial_capacity must be >= 2")
        self.head = self.svar("HEAD")
        self.tail = self.svar("TAIL")
        self.array = self.svar("ARRAY")  # descriptor index of the live array
        self.max_regions = max_regions
        self.regions: list[SharedArray] = []
        self.grows = 0
        self._alloc_region(initial_capacity)
        self.init_opstats()

    def _alloc_region(self, capacity: int) -> int:
        if len(self.regions) >= self.max_regions:
            raise MemoryError(f"{self.name}: too many growths")
        region = self.sarray(f"arr{len(self.regions)}", capacity)
        self.regions.append(region)
        return len(self.regions) - 1

    def _grow(self, head: int, tail: int, old: int):
        """Guest fragment: double the array and copy the live window."""
        new = self._alloc_region(2 * len(self.regions[old]))
        old_region, new_region = self.regions[old], self.regions[new]
        for i in range(head, tail):
            task = yield old_region.load(i % len(old_region))
            yield new_region.store(i % len(new_region), task)
        # every copied element must be visible before the new array is
        yield self.fence(WAIT_STORES)
        yield self.array.store(new)
        self.grows += 1
        return new

    @scoped_method
    def put(self, task: int):
        yield self.note_op()
        tail = yield self.tail.load()
        head = yield self.head.load()
        d = yield self.array.load()
        if tail - head >= len(self.regions[d]):
            d = yield from self._grow(head, tail, d)
        region = self.regions[d]
        yield region.store(tail % len(region), task)
        yield self.fence(WAIT_STORES)  # storestore (Figure 2 line 4)
        yield self.tail.store(tail + 1)

    @scoped_method
    def take(self):
        yield self.note_op()
        tail = (yield self.tail.load()) - 1
        yield self.tail.store(tail)
        yield self.fence(WAIT_STORES, speculable=False)  # storeload
        head = yield self.head.load()
        if tail < head:
            yield self.tail.store(head)
            return EMPTY
        d = yield self.array.load()
        region = self.regions[d]
        task = yield region.load(tail % len(region))
        if tail > head:
            return task
        yield self.tail.store(head + 1)
        ok = yield self.head.cas(head, head + 1)
        if not ok:
            return EMPTY
        return task

    @scoped_method
    def steal(self):
        yield self.note_op()
        head = yield self.head.load()
        tail = yield self.tail.load()
        if head >= tail:
            return EMPTY
        # a stale array pointer is safe: old arrays keep valid data
        d = yield self.array.load()
        region = self.regions[d]
        task = yield region.load(head % len(region))
        ok = yield self.head.cas(head, head + 1)
        if not ok:
            return ABORT
        return task

    # host helpers --------------------------------------------------------------
    def snapshot(self) -> tuple[int, int]:
        return self.head.peek(), self.tail.peek()

    @property
    def live_capacity(self) -> int:
        return len(self.regions[self.array.peek()])
