"""Guest lock-free algorithms (Table IV rows 1-4 plus extensions)."""

from .chase_lev import ABORT, EMPTY, WorkStealingDeque
from .chase_lev_growable import GrowableWorkStealingDeque
from .idempotent_wsq import IdempotentLifo
from .dekker import DekkerLock, MutualExclusionChecker
from .harris_set import HarrisSet
from .lamport_queue import LamportQueue
from .ms_queue import MichaelScottQueue
from .treiber_stack import TreiberStack
from .mixed import build_mixed_workload
from .workloads import (
    WorkloadHandle,
    build_harris_workload,
    build_lamport_workload,
    build_msn_workload,
    build_treiber_workload,
    build_wsq_workload,
)
from .dekker import build_workload as build_dekker_workload

__all__ = [
    "ABORT",
    "EMPTY",
    "DekkerLock",
    "GrowableWorkStealingDeque",
    "HarrisSet",
    "IdempotentLifo",
    "LamportQueue",
    "MichaelScottQueue",
    "MutualExclusionChecker",
    "TreiberStack",
    "WorkloadHandle",
    "WorkStealingDeque",
    "build_dekker_workload",
    "build_harris_workload",
    "build_lamport_workload",
    "build_mixed_workload",
    "build_msn_workload",
    "build_treiber_workload",
    "build_wsq_workload",
]
