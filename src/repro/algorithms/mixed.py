"""Mixed-structure workload: many scoped classes active at once.

The paper's overflow machinery (Section IV-A3, "handling excessive
scopes") only matters when several *different* scoped classes have
fences in flight simultaneously.  This workload gives every thread a
work-stealing deque, a shared Michael-Scott queue, a shared Harris set
and a shared Treiber stack -- four distinct class ids -- so FSB-entry
sharing and mapping-table pressure actually occur when the hardware is
sized small (the A1 ablation bench sweeps ``fsb_entries``).
"""

from __future__ import annotations

import random
from collections import Counter

from ..isa.instructions import FenceKind
from ..isa.program import Program
from ..runtime.harness import PrivateWork
from ..runtime.lang import Env
from .chase_lev import WorkStealingDeque
from .harris_set import HarrisSet
from .ms_queue import EMPTY as MS_EMPTY
from .ms_queue import MichaelScottQueue
from .treiber_stack import EMPTY as TS_EMPTY
from .treiber_stack import TreiberStack
from .workloads import WorkloadHandle


def build_mixed_workload(
    env: Env,
    scope: FenceKind = FenceKind.CLASS,
    iterations: int = 12,
    workload_level: int = 1,
    n_threads: int = 8,
    key_space: int = 12,
    seed: int = 31,
) -> WorkloadHandle:
    """Each thread round-robins over four different lock-free structures."""
    deques = [
        WorkStealingDeque(env, name=f"mix.wsq{t}", capacity=4 * iterations + 4, scope=scope)
        for t in range(n_threads)
    ]
    queue = MichaelScottQueue(
        env, name="mix.msn", pool_size=n_threads * iterations + 8, scope=scope
    )
    sset = HarrisSet(
        env, name="mix.harris", pool_size=n_threads * iterations + 8, scope=scope
    )
    stack = TreiberStack(
        env, name="mix.treiber", pool_size=n_threads * iterations + 8, scope=scope
    )
    works = [
        PrivateWork(env, t, workload_level, name="mix.priv") for t in range(n_threads)
    ]

    enq: list[int] = []
    deq: list[int] = []
    pushed: list[int] = []
    popped: list[int] = []
    ins_ok: Counter = Counter()
    del_ok: Counter = Counter()
    wsq_log: list[tuple[int, int]] = []

    def worker(tid: int):
        rng = random.Random(seed + tid)
        my = deques[tid]
        work = works[tid]
        for i in range(iterations):
            token = tid * 1000 + i + 1
            # deque: put one, take one (owner side)
            yield from my.put(token)
            got = yield from my.take()
            if got >= 0:
                wsq_log.append((tid, got))
            yield from work.emit(i)
            # shared queue
            enq.append(token)
            yield from queue.enqueue(token)
            got = yield from queue.dequeue()
            if got != MS_EMPTY:
                deq.append(got)
            yield from work.emit(i)
            # shared set
            key = rng.randrange(key_space)
            if rng.random() < 0.5:
                if (yield from sset.insert(key)):
                    ins_ok[key] += 1
            else:
                if (yield from sset.delete(key)):
                    del_ok[key] += 1
            # shared stack
            pushed.append(token)
            yield from stack.push(token)
            got = yield from stack.pop()
            if got != TS_EMPTY:
                popped.append(got)
            yield from work.emit(i)

    def check() -> None:
        # queue accounting
        assert not (set(deq) - set(enq)), "mixed: phantom queue values"
        assert Counter(deq) + Counter(queue.drain_host()) == Counter(enq)
        # stack accounting
        assert not (set(popped) - set(pushed)), "mixed: phantom stack values"
        assert Counter(popped) + Counter(stack.values_host()) == Counter(pushed)
        # set balance
        present = set(sset.keys_host())
        for key in set(ins_ok) | set(del_ok):
            assert ins_ok[key] - del_ok[key] == (1 if key in present else 0)
        # deque: nothing extracted twice
        got = [v for _, v in wsq_log]
        assert len(set(got)) == len(got), "mixed: duplicate deque tasks"

    return WorkloadHandle(
        Program([worker] * n_threads, name="mixed"),
        check,
        meta={
            "structures": {"queue": queue, "set": sset, "stack": stack, "deques": deques},
        },
    )
