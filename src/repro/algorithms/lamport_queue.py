"""Lamport's single-producer single-consumer queue (extension).

Cited in the paper's introduction ([28]) as a classic concurrent
algorithm; it needs no CAS at all, only fences: the producer must order
the slot write before the ``tail`` publication (store-store), and the
consumer must order the ``head`` publication after the slot read.
Class scope confines both to the queue's ring buffer and indices.
"""

from __future__ import annotations

from ..isa.instructions import FenceKind, WAIT_LOADS, WAIT_STORES
from ..runtime.lang import Env, ScopedStructure, scoped_method

EMPTY = -1
FULL = -2


class LamportQueue(ScopedStructure):
    """Bounded SPSC ring buffer."""

    def __init__(
        self,
        env: Env,
        name: str = "lamport",
        capacity: int = 64,
        scope: FenceKind = FenceKind.CLASS,
        use_fences: bool = True,
    ) -> None:
        super().__init__(env, name, scope)
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self.buf = self.sarray("buf", capacity)
        self.head = self.svar("HEAD")
        self.tail = self.svar("TAIL")
        self.use_fences = use_fences

    def _fence(self, waits: int):
        if self.use_fences:
            yield self.fence(waits)

    @scoped_method
    def enqueue(self, value: int):
        """Producer only.  Returns False when the ring is full."""
        tail = yield self.tail.load()
        head = yield self.head.load()
        if (tail + 1) % self.capacity == head % self.capacity:
            return False
        yield self.buf.store(tail % self.capacity, value)
        yield from self._fence(WAIT_STORES)  # slot before tail publication
        yield self.tail.store(tail + 1)
        return True

    @scoped_method
    def dequeue(self):
        """Consumer only.  Returns ``EMPTY`` when nothing is queued."""
        head = yield self.head.load()
        tail = yield self.tail.load()
        if head == tail:
            return EMPTY
        value = yield self.buf.load(head % self.capacity)
        yield from self._fence(WAIT_LOADS)  # slot read before head publication
        yield self.head.store(head + 1)
        return value
