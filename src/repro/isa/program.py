"""Guest thread / program abstractions.

A *guest thread* is a generator created from a thread function::

    def body(env, tid):
        v = yield some_var.load()
        yield some_var.store(v + 1)

``Program`` bundles one thread function per core together with the
shared environment they run against.  The simulator instantiates the
generators and pulls ops from them at dispatch time.
"""

from __future__ import annotations

from collections.abc import Callable, Generator, Iterable
from dataclasses import dataclass, field

from .instructions import Op


ThreadFn = Callable[..., Generator[Op, object, object]]


@dataclass
class Program:
    """A multithreaded guest program: one generator factory per thread.

    ``thread_fns[i]`` is called as ``thread_fns[i](i)`` to create the
    generator for thread *i*; use ``functools.partial``/closures to bind
    an environment.
    """

    thread_fns: list[Callable[[int], Generator[Op, object, object]]]
    name: str = "program"
    #: per-thread op lists when the instruction stream is static (set by
    #: :func:`ops_program`); the trace compiler
    #: (:mod:`repro.sim.tracecomp`) compiles these into admission blocks.
    #: ``None`` marks a dynamic program whose control flow may depend on
    #: loaded values -- those always stream op-by-op.
    static_thread_ops: list[list[Op]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n_threads(self) -> int:
        return len(self.thread_fns)

    def spawn(self) -> list[Generator[Op, object, object]]:
        """Instantiate one fresh generator per thread."""
        return [fn(tid) for tid, fn in enumerate(self.thread_fns)]


def ops_program(per_thread_ops: Iterable[Iterable[Op]], name: str = "ops") -> Program:
    """Build a ``Program`` from static per-thread op lists.

    Handy for litmus tests and unit tests where the instruction stream
    does not depend on loaded values.
    """
    materialized = [list(ops) for ops in per_thread_ops]

    def make_fn(ops: list[Op]):
        def fn(tid: int):
            for op in ops:
                yield op
        return fn

    return Program(
        [make_fn(ops) for ops in materialized],
        name=name,
        static_thread_ops=materialized,
    )
