"""Guest instruction set.

Guest programs are Python generators that *yield* instances of the op
classes below and receive the architectural result of each op back from
the simulator via ``generator.send`` (loads receive the loaded value,
``Cas`` receives a success flag, every other op receives ``None``).

The op set mirrors the ISA the paper assumes plus the extensions it
introduces (Section IV-A1 and V-A1):

* ``Fence`` with a *kind* — ``GLOBAL`` is the traditional full fence,
  ``CLASS`` is ``S-FENCE[class]`` (the new ``class-fence`` instruction)
  and ``SET`` is ``S-FENCE[set, {...}]`` (the new ``set-fence``).
* ``FsStart``/``FsEnd`` — the supporting instructions that delimit a
  class scope; the compiler layer (:mod:`repro.runtime.lang`) inserts
  them at every public-method entry/exit.
* ``Load``/``Store``/``Cas`` carry a ``flagged`` bit — the set-scope
  flag the compiler attaches to accesses of the variables named in a
  set-scope fence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FenceKind(enum.Enum):
    """Scope of a fence (Figure 4 of the paper)."""

    GLOBAL = "global"  # S-FENCE           -- traditional full fence
    CLASS = "class"    # S-FENCE[class]    -- class scope
    SET = "set"        # S-FENCE[set,{..}] -- set scope


# Bitmask describing which *prior* access categories a fence must wait
# for.  A store-store / store-load fence waits on prior stores; a
# load-load / load-store fence waits on prior loads.  ``WAIT_BOTH`` is a
# full bidirectional fence (the default, matching RMO ``membar #Sync``).
WAIT_LOADS = 0b01
WAIT_STORES = 0b10
WAIT_BOTH = WAIT_LOADS | WAIT_STORES


class Op:
    """Base class for all guest ops (used only for isinstance checks)."""

    __slots__ = ()


@dataclass(slots=True)
class Load(Op):
    """Read one word from shared memory; yields back the loaded value.

    ``serialize=True`` models an address dependency: the next op cannot
    dispatch until this load completes (pointer chasing).  The default
    ``False`` lets independent loads overlap freely.
    """

    addr: int
    flagged: bool = False  # set-scope flag (compiler-attached)
    serialize: bool = False
    name: str = ""         # symbolic name, for traces/tests only


@dataclass(slots=True)
class Store(Op):
    """Write one word; becomes globally visible at store-buffer drain."""

    addr: int
    value: int
    flagged: bool = False
    name: str = ""


@dataclass(slots=True)
class Cas(Op):
    """Atomic compare-and-swap; yields back ``True`` on success.

    Atomics "imply the same effect as fence instructions" (Section
    II-A); the core model treats a CAS as a full fence in both
    directions unless ``SimConfig.scoped_cas`` is enabled (ablation A2),
    in which case it is scoped like the enclosing fence scope.
    """

    addr: int
    expected: int
    new: int
    flagged: bool = False
    name: str = ""


@dataclass(slots=True)
class Fence(Op):
    """Memory fence with a scope kind and a wait mask.

    ``speculable=False`` opts a fence out of in-window speculation.
    Real hardware replays loads that were speculated past a fence and
    turned out to violate it; this functional-first simulator cannot
    replay (guest generators consume load values immediately), so the
    few fences whose *younger loads* guard racy non-CAS-protected
    decisions (e.g. the store-load fence in Chase-Lev ``take``,
    Dekker's flag fences) are modelled conservatively.
    """

    kind: FenceKind = FenceKind.GLOBAL
    waits: int = WAIT_BOTH
    speculable: bool = True
    #: optional insertion-slot label ("put.publish", ...) used by the
    #: whole-program synthesizer to identify hand-written placements;
    #: ignored by the simulator.
    name: str = ""


@dataclass(slots=True)
class FsStart(Op):
    """Start of a class fence scope (operand: the class id *cid*)."""

    cid: int


@dataclass(slots=True)
class FsEnd(Op):
    """End of a class fence scope (operand: the class id *cid*)."""

    cid: int


@dataclass(slots=True)
class Compute(Op):
    """``cycles`` worth of register-only arithmetic (occupies the ROB)."""

    cycles: int = 1


@dataclass(slots=True)
class Branch(Op):
    """A resolved conditional branch.

    Functional control flow is decided by the guest generator itself;
    this op exists so the *timing* model can charge branch resolution
    latency and, on a misprediction, a pipeline flush that restores the
    fence scope stack from its shadow copy FSS' (Section IV-A3,
    "Handling branch prediction").

    With ``SimConfig.use_branch_predictor`` the core predicts the
    direction from a two-bit predictor indexed by ``pc`` and derives
    the misprediction itself; otherwise the guest-stamped
    ``mispredict`` flag is trusted (deterministic tests/models).
    """

    taken: bool = True
    mispredict: bool = False
    pc: int = 0


@dataclass(slots=True)
class Probe(Op):
    """Instrumentation hook executed functionally at dispatch time.

    Used by test harnesses (e.g. the Dekker mutual-exclusion checker)
    to observe the architectural state at a precise point in program
    order.  It costs one dispatch slot and nothing else, so it does not
    perturb fence-stall accounting.
    """

    fn: object = None          # callable(cycle) -> None
    payload: object = None


MEM_OPS = (Load, Store, Cas)


def is_mem_op(op: Op) -> bool:
    """True for ops that occupy a memory slot (load/store/CAS)."""
    return isinstance(op, MEM_OPS)
