"""Guest ISA: instruction dataclasses and program abstractions."""

from .instructions import (
    Branch,
    Cas,
    Compute,
    Fence,
    FenceKind,
    FsEnd,
    FsStart,
    Load,
    Op,
    Probe,
    Store,
    WAIT_BOTH,
    WAIT_LOADS,
    WAIT_STORES,
    is_mem_op,
)
from .program import Program, ThreadFn, ops_program

__all__ = [
    "Branch",
    "Cas",
    "Compute",
    "Fence",
    "FenceKind",
    "FsEnd",
    "FsStart",
    "Load",
    "Op",
    "Probe",
    "Program",
    "Store",
    "ThreadFn",
    "WAIT_BOTH",
    "WAIT_LOADS",
    "WAIT_STORES",
    "is_mem_op",
    "ops_program",
]
